"""Byte-aligned run-length codec (BBC).

The paper compresses bitmaps with "a byte-aligned run-length encoding
scheme proposed by Antoshenkov [Ant93] which is used in Oracle8".  The
patent text is not reproduced in the paper, so this module implements a
codec with the same structure and asymptotics as BBC:

* the bitmap is viewed as a byte sequence;
* the stream is a sequence of *atoms*; each atom is a one-byte header
  optionally followed by variable-length counters and literal bytes;
* an atom encodes a *fill* (a run of identical ``0x00`` or ``0xFF``
  bytes) followed by a *tail* of literal (verbatim) bytes.

Header layout (one byte)::

    bit 7      fill value (0 = zero fill, 1 = one fill)
    bits 6..4  fill length in bytes; 0..6 stored inline, 7 means an
               unsigned LEB128 extension follows (value 7 + ext)
    bits 3..0  literal tail length in bytes; 0..14 stored inline, 15
               means an unsigned LEB128 extension follows (value 15 + ext)

Long runs of equal bits therefore cost O(log run) bytes while
incompressible regions cost one extra header byte per 14 literal bytes —
exactly the behaviour the paper's Figures 6(b), 6(c), 7 and 9 depend on.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress.base import Codec, register_codec
from repro.errors import CodecError

_FILL_INLINE_MAX = 6  # 3-bit field, 7 = extended
_LIT_INLINE_MAX = 14  # 4-bit field, 15 = extended


def _write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 integer."""
    if value < 0:
        raise CodecError(f"varint value must be >= 0, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(payload: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 integer; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(payload):
            raise CodecError("truncated varint in BBC stream")
        byte = payload[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _byte_runs(data: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length segmentation of a uint8 array: ``(start_indices, values)``."""
    if data.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
    change = np.flatnonzero(data[1:] != data[:-1]) + 1
    starts = np.concatenate(([0], change))
    return starts, data[starts]


class BbcCodec(Codec):
    """Byte-aligned run-length codec in the style of Antoshenkov's BBC."""

    name = "bbc"

    #: Minimum length for a 0x00/0xFF byte run to be encoded as a fill
    #: rather than folded into a literal tail.  A run of one fill byte
    #: saves nothing over a literal, so the threshold is two.
    _MIN_FILL_RUN = 2

    def encode(self, vector: BitVector) -> bytes:
        data = np.frombuffer(vector.to_bytes(), dtype=np.uint8)
        # Trim trailing padding bytes that are entirely past the logical
        # length; they are zero by the padding invariant and the decoder
        # regenerates them.
        logical_bytes = (len(vector) + 7) // 8
        data = data[:logical_bytes]

        starts, values = _byte_runs(data)
        lengths = np.diff(np.concatenate((starts, [data.size])))

        out = bytearray()
        pending_fill_bit = 0
        pending_fill_len = 0
        pending_literals = bytearray()

        def flush() -> None:
            nonlocal pending_fill_bit, pending_fill_len
            if pending_fill_len == 0 and not pending_literals:
                return
            self._emit_atom(out, pending_fill_bit, pending_fill_len, pending_literals)
            pending_fill_bit = 0
            pending_fill_len = 0
            pending_literals.clear()

        for start, value, length in zip(
            starts.tolist(), values.tolist(), lengths.tolist()
        ):
            is_fill = value in (0x00, 0xFF) and length >= self._MIN_FILL_RUN
            if is_fill:
                # A fill starts a new atom: flush whatever is pending.
                flush()
                pending_fill_bit = 1 if value == 0xFF else 0
                pending_fill_len = length
            else:
                pending_literals.extend(data[start : start + length].tobytes())
        flush()
        return bytes(out)

    @staticmethod
    def _emit_atom(
        out: bytearray, fill_bit: int, fill_len: int, literals: bytearray
    ) -> None:
        fill_field = min(fill_len, _FILL_INLINE_MAX + 1)
        lit_field = min(len(literals), _LIT_INLINE_MAX + 1)
        header = (fill_bit << 7) | (fill_field << 4) | lit_field
        out.append(header)
        if fill_field == _FILL_INLINE_MAX + 1:
            _write_varint(out, fill_len - (_FILL_INLINE_MAX + 1))
        if lit_field == _LIT_INLINE_MAX + 1:
            _write_varint(out, len(literals) - (_LIT_INLINE_MAX + 1))
        out.extend(literals)

    def decode(self, payload: bytes, length: int) -> BitVector:
        logical_bytes = (length + 7) // 8
        chunks: list[bytes] = []
        produced = 0
        pos = 0
        while pos < len(payload):
            header = payload[pos]
            pos += 1
            fill_bit = header >> 7
            fill_len = (header >> 4) & 0x7
            lit_len = header & 0xF
            if fill_len == _FILL_INLINE_MAX + 1:
                ext, pos = _read_varint(payload, pos)
                fill_len += ext
            if lit_len == _LIT_INLINE_MAX + 1:
                ext, pos = _read_varint(payload, pos)
                lit_len += ext
            if fill_len:
                chunks.append((b"\xff" if fill_bit else b"\x00") * fill_len)
                produced += fill_len
            if lit_len:
                end = pos + lit_len
                if end > len(payload):
                    raise CodecError("truncated literal tail in BBC stream")
                chunks.append(payload[pos:end])
                pos = end
                produced += lit_len
        if produced > logical_bytes:
            raise CodecError(
                f"BBC stream decodes to {produced} bytes but length {length} "
                f"allows only {logical_bytes}"
            )
        # Trailing zero bytes may have been trimmed at encode time.
        body = b"".join(chunks) + b"\x00" * (logical_bytes - produced)
        # Pad out to whole 64-bit words for BitVector.from_bytes.
        word_bytes = ((length + 63) // 64) * 8
        return BitVector.from_bytes(length, body + b"\x00" * (word_bytes - logical_bytes))


register_codec(BbcCodec())
