"""Roaring bitmap codec: 2^16-bit chunks with typed containers.

Roaring (Chambi, Lemire, Kaser & Godin, "Better bitmap performance with
Roaring bitmaps") partitions the bit space into chunks of 2^16 bits and
stores each non-empty chunk in whichever *container* representation is
smallest:

* **array** — the sorted ``uint16`` offsets of the set bits, used for
  sparse chunks (cardinality <= 4096, i.e. where two bytes per bit beat
  the 8 KB bitmap);
* **bitmap** — the chunk's verbatim 64-bit words, used for dense chunks
  (cardinality > 4096); the final chunk of a non-aligned vector stores
  only the words the logical length needs;
* **run** — ``(start, length)`` pairs of the chunk's maximal 1-runs,
  used whenever ``4 * num_runs`` bytes undercut both alternatives (the
  ``runOptimize`` rule of the Roaring paper's follow-up).

Unlike the word-aligned RLE codecs (WAH/EWAH) the compressed form is
*indexed*: the container directory maps high bits to containers, so
logical operations dispatch per container pair without scanning a run
stream (:mod:`repro.compress.roaring_ops`).

Stream layout (all little-endian)::

    uint32           number of containers n
    uint16[n]        chunk keys (bits 16..31 of the positions), ascending
    uint8[n]         container kinds (0 = array, 1 = bitmap, 2 = run)
    uint32[n]        counts (array: cardinality; bitmap: word count;
                     run: number of runs)
    payloads         concatenated container payloads, in directory order
                     (array: uint16 offsets; bitmap: uint64 words;
                     run: uint16 starts then uint16 lengths-minus-one)

Container construction funnels through :func:`container_from_words`,
:func:`container_from_positions` and :func:`container_from_runs`, which
share one classification rule — the compressed-domain operations reuse
them, so their outputs are bit-identical to re-encoding the decoded
result (the canonical-form property the differential suite pins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.errors import CodecError

#: Bits per chunk (the container partition size).
CHUNK_BITS = 1 << 16
#: 64-bit words per full chunk.
CHUNK_WORDS = CHUNK_BITS // 64
#: Largest cardinality stored as an array container.
ARRAY_MAX_CARD = 4096

#: Container kind tags (also the serialized kind bytes).
ARRAY = 0
BITMAP = 1
RUN = 2

_ONE = np.uint64(1)


@dataclass
class Container:
    """One chunk's worth of bits in its chosen representation.

    ``data`` is a sorted ``uint16`` offset array (:data:`ARRAY`), a
    ``uint64`` word array (:data:`BITMAP`), or a ``(starts, lengths)``
    pair of a ``uint16`` array and an ``int64`` array (:data:`RUN`).
    """

    key: int
    kind: int
    data: object


def chunk_geometry(key: int, length: int) -> tuple[int, int]:
    """(bits, words) covered by chunk ``key`` of a ``length``-bit vector."""
    bits = min(CHUNK_BITS, length - key * CHUNK_BITS)
    return bits, (bits + 63) // 64


def _classify(card: int, num_runs: int, chunk_words: int) -> int:
    """Pick the smallest container kind for the given chunk statistics."""
    if 4 * num_runs < min(chunk_words * 8, 2 * card):
        return RUN
    if card <= ARRAY_MAX_CARD:
        return ARRAY
    return BITMAP


def _runs_from_positions(rel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Maximal consecutive runs of a sorted position array."""
    breaks = np.flatnonzero(np.diff(rel) != 1)
    starts = rel[np.concatenate(([0], breaks + 1))]
    ends = rel[np.concatenate((breaks, [rel.size - 1]))]
    return starts, ends - starts + 1


def _words_from_positions(rel: np.ndarray, chunk_words: int) -> np.ndarray:
    words = np.zeros(chunk_words, dtype=np.uint64)
    np.bitwise_or.at(words, rel >> 6, _ONE << (rel & 63).astype(np.uint64))
    return words


def container_from_positions(
    key: int, rel: np.ndarray, chunk_bits: int
) -> Container | None:
    """Best container for the sorted chunk-relative positions ``rel``."""
    if rel.size == 0:
        return None
    chunk_words = (chunk_bits + 63) // 64
    starts, lengths = _runs_from_positions(rel)
    kind = _classify(rel.size, starts.size, chunk_words)
    if kind == ARRAY:
        return Container(key, ARRAY, rel.astype(np.uint16))
    if kind == RUN:
        return Container(key, RUN, (starts.astype(np.uint16), lengths))
    return Container(key, BITMAP, _words_from_positions(rel, chunk_words))


def container_from_words(
    key: int, words: np.ndarray, chunk_bits: int
) -> Container | None:
    """Best container for a chunk given as its 64-bit words."""
    card = int(np.bitwise_count(words).astype(np.int64).sum())
    if card == 0:
        return None
    # 1-runs start at set bits whose predecessor (within the chunk) is 0.
    carry = np.concatenate(
        (np.zeros(1, dtype=np.uint64), words[:-1] >> np.uint64(63))
    )
    run_starts = words & ~((words << _ONE) | carry)
    num_runs = int(np.bitwise_count(run_starts).astype(np.int64).sum())
    kind = _classify(card, num_runs, words.shape[0])
    if kind == BITMAP:
        return Container(key, BITMAP, words.copy())
    rel = np.flatnonzero(
        np.unpackbits(words.view(np.uint8), bitorder="little")
    ).astype(np.int64)
    if kind == ARRAY:
        return Container(key, ARRAY, rel.astype(np.uint16))
    starts, lengths = _runs_from_positions(rel)
    return Container(key, RUN, (starts.astype(np.uint16), lengths))


def container_from_runs(
    key: int, starts: np.ndarray, lengths: np.ndarray, chunk_bits: int
) -> Container | None:
    """Best container for a chunk given as sorted, gapped 1-runs."""
    card = int(lengths.sum())
    if card == 0:
        return None
    chunk_words = (chunk_bits + 63) // 64
    kind = _classify(card, starts.size, chunk_words)
    if kind == RUN:
        return Container(key, RUN, (starts.astype(np.uint16), lengths))
    rel = kernels.expand_ranges(starts, lengths)
    if kind == ARRAY:
        return Container(key, ARRAY, rel.astype(np.uint16))
    return Container(key, BITMAP, _words_from_positions(rel, chunk_words))


# ---------------------------------------------------------------------------
# Vector <-> containers
# ---------------------------------------------------------------------------


def containers_from_vector(vector: BitVector) -> list[Container]:
    """Partition ``vector`` into its non-empty chunk containers."""
    length = len(vector)
    if length == 0:
        return []
    words = vector.words
    per_word = np.bitwise_count(words).astype(np.int64)
    edges = np.arange(0, words.shape[0], CHUNK_WORDS)
    cards = np.add.reduceat(per_word, edges)
    out: list[Container] = []
    for key in np.flatnonzero(cards).tolist():
        chunk_bits, chunk_words = chunk_geometry(key, length)
        start = key * CHUNK_WORDS
        out.append(
            container_from_words(key, words[start : start + chunk_words], chunk_bits)
        )
    return out


def vector_from_containers(containers: list[Container], length: int) -> BitVector:
    """Materialize the ``length``-bit vector the containers describe."""
    num_chunks = (length + CHUNK_BITS - 1) // CHUNK_BITS
    words = np.zeros((length + 63) // 64, dtype=np.uint64)
    position_parts: list[np.ndarray] = []
    for container in containers:
        if container.key >= num_chunks:
            raise CodecError(
                f"roaring container key {container.key} overruns the "
                f"declared length {length}"
            )
        chunk_bits, chunk_words = chunk_geometry(container.key, length)
        base = container.key * CHUNK_BITS
        if container.kind == BITMAP:
            if container.data.shape[0] != chunk_words:
                raise CodecError(
                    f"roaring bitmap container has {container.data.shape[0]} "
                    f"words, chunk {container.key} holds {chunk_words}"
                )
            word_base = container.key * CHUNK_WORDS
            words[word_base : word_base + chunk_words] = container.data
        elif container.kind == ARRAY:
            rel = container.data.astype(np.int64)
            if int(rel[-1]) >= chunk_bits:
                raise CodecError(
                    "roaring array container overruns the declared length"
                )
            position_parts.append(rel + base)
        else:
            starts, lengths = container.data
            ends = starts.astype(np.int64) + lengths
            if int(ends.max()) > chunk_bits:
                raise CodecError(
                    "roaring run container overruns the declared length"
                )
            position_parts.append(kernels.expand_ranges(starts, lengths) + base)
    if position_parts:
        positions = np.concatenate(position_parts)
        np.bitwise_or.at(
            words, positions >> 6, _ONE << (positions & 63).astype(np.uint64)
        )
    vector = BitVector(length, words)
    vector._mask_padding()
    return vector


# ---------------------------------------------------------------------------
# Containers <-> bytes
# ---------------------------------------------------------------------------


def roaring_bytes(containers: list[Container]) -> bytes:
    """Serialize containers (already in ascending key order)."""
    n = len(containers)
    keys = np.fromiter((c.key for c in containers), dtype="<u2", count=n)
    kinds = np.fromiter((c.kind for c in containers), dtype=np.uint8, count=n)
    counts = np.empty(n, dtype="<u4")
    parts: list[bytes] = []
    for i, container in enumerate(containers):
        if container.kind == ARRAY:
            counts[i] = container.data.size
            parts.append(container.data.astype("<u2").tobytes())
        elif container.kind == BITMAP:
            counts[i] = container.data.shape[0]
            parts.append(container.data.astype("<u8").tobytes())
        else:
            starts, lengths = container.data
            counts[i] = starts.size
            parts.append(starts.astype("<u2").tobytes())
            parts.append((lengths - 1).astype("<u2").tobytes())
    header = np.asarray([n], dtype="<u4").tobytes()
    return b"".join([header, keys.tobytes(), kinds.tobytes(), counts.tobytes(), *parts])


def containers_from_roaring(payload: bytes) -> list[Container]:
    """Parse a roaring stream back into containers (with validation)."""
    size = len(payload)
    if size < 4:
        raise CodecError(f"roaring payload too short ({size} bytes)")
    n = int(np.frombuffer(payload, dtype="<u4", count=1)[0])
    directory_end = 4 + 7 * n
    if size < directory_end:
        raise CodecError("truncated roaring container directory")
    keys = np.frombuffer(payload, dtype="<u2", count=n, offset=4)
    kinds = np.frombuffer(payload, dtype=np.uint8, count=n, offset=4 + 2 * n)
    counts = np.frombuffer(payload, dtype="<u4", count=n, offset=4 + 3 * n)
    if n and not bool((keys[1:] > keys[:-1]).all()):
        raise CodecError("roaring container keys not strictly ascending")
    out: list[Container] = []
    offset = directory_end
    for i in range(n):
        kind = int(kinds[i])
        count = int(counts[i])
        if count == 0:
            raise CodecError("empty roaring container")
        if kind == ARRAY:
            nbytes = 2 * count
        elif kind == BITMAP:
            nbytes = 8 * count
            if count > CHUNK_WORDS:
                raise CodecError(
                    f"roaring bitmap container of {count} words exceeds a chunk"
                )
        elif kind == RUN:
            nbytes = 4 * count
        else:
            raise CodecError(f"unknown roaring container kind {kind}")
        if offset + nbytes > size:
            raise CodecError("truncated roaring container payload")
        if kind == ARRAY:
            data = np.frombuffer(payload, dtype="<u2", count=count, offset=offset)
            data = data.astype(np.uint16)
            if count > 1 and not bool((data[1:] > data[:-1]).all()):
                raise CodecError("roaring array container not strictly sorted")
            out.append(Container(int(keys[i]), ARRAY, data))
        elif kind == BITMAP:
            words = np.frombuffer(payload, dtype="<u8", count=count, offset=offset)
            out.append(Container(int(keys[i]), BITMAP, words.astype(np.uint64)))
        else:
            starts = np.frombuffer(
                payload, dtype="<u2", count=count, offset=offset
            ).astype(np.uint16)
            lengths = (
                np.frombuffer(
                    payload, dtype="<u2", count=count, offset=offset + 2 * count
                ).astype(np.int64)
                + 1
            )
            ends = starts.astype(np.int64) + lengths
            if int(ends.max()) > CHUNK_BITS:
                raise CodecError("roaring run container overruns its chunk")
            if count > 1 and not bool((starts[1:].astype(np.int64) > ends[:-1]).all()):
                raise CodecError("roaring run container runs overlap or touch")
            out.append(Container(int(keys[i]), RUN, (starts, lengths)))
        offset += nbytes
    if offset != size:
        raise CodecError(
            f"roaring payload has {size - offset} trailing bytes"
        )
    return out


class RoaringCodec(Codec):
    """Roaring container codec (2^16-bit chunks, typed containers)."""

    name = "roaring"

    def _encode(self, vector: BitVector) -> bytes:
        return roaring_bytes(containers_from_vector(vector))

    def _decode(self, payload: bytes, length: int) -> BitVector:
        return vector_from_containers(containers_from_roaring(payload), length)


register_codec(RoaringCodec())
