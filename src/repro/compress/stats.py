"""Compression measurement helpers."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.bitmap import BitVector
from repro.compress.base import Codec, available_codecs, get_codec


@dataclass(frozen=True)
class CompressionStats:
    """Aggregate sizes for a collection of bitmaps under one codec.

    ``ratio`` is compressed/uncompressed, the quantity plotted in the
    paper's Figure 6(b).
    """

    codec: str
    num_bitmaps: int
    raw_bytes: int
    encoded_bytes: int

    @property
    def ratio(self) -> float:
        """Compressed size over uncompressed size (0 when there is no data)."""
        if self.raw_bytes == 0:
            return 0.0
        return self.encoded_bytes / self.raw_bytes


def measure_codec(codec: Codec, vectors: Iterable[BitVector]) -> CompressionStats:
    """Encode every vector and tally raw vs encoded sizes."""
    num = 0
    raw = 0
    enc = 0
    for vector in vectors:
        num += 1
        raw += vector.num_words * 8
        enc += codec.encoded_size(vector)
    return CompressionStats(codec.name, num, raw, enc)


def measure_all_codecs(
    vectors: Iterable[BitVector], names: Sequence[str] | None = None
) -> dict[str, CompressionStats]:
    """Measure the same vectors under several codecs.

    ``names`` defaults to every registered codec, in registry (sorted)
    order — the comparison the codec-ablation studies tabulate.
    """
    vectors = list(vectors)
    if names is None:
        names = available_codecs()
    return {name: measure_codec(get_codec(name), vectors) for name in names}
