"""Logical operations directly on WAH-compressed bitmaps.

The WAH counterpart of :mod:`repro.compress.compressed_ops`: AND/OR/XOR
over 32-bit Word-Aligned Hybrid payloads without expanding to bit
arrays.  Both streams are parsed into run arrays
(:func:`repro.compress.wah.runs_from_wah`) and combined by the
vectorized kernels in :mod:`repro.compress.kernels`: run alignment is a
``searchsorted`` merge over the union of run boundaries, fill x fill
stretches combine in O(1) per overlap, and every stretch touching
literal groups is computed by a single numpy op over the whole overlap.
Fills produced by the operation are re-detected so outputs stay
canonical.

WAH cannot represent a complement without knowing the logical length
(the last group is padded), so :func:`wah_not` takes the bit length,
exactly like :func:`repro.compress.compressed_ops.ewah_not`.
"""

from __future__ import annotations

import numpy as np

from repro.compress import kernels
from repro.compress.wah import (
    _GROUP_BITS,
    _LITERAL_MASK,
    runs_from_wah,
    wah_from_runs,
)
from repro.errors import CodecError


def wah_logical(op: str, payload_a: bytes, payload_b: bytes) -> bytes:
    """``op`` in {"and", "or", "xor"} over equal-group-count WAH payloads."""
    if op not in kernels._NP_OPS:
        raise CodecError(f"unknown compressed operation {op!r}")
    runs_a = runs_from_wah(payload_a)
    runs_b = runs_from_wah(payload_b)
    if runs_a.total != runs_b.total:
        raise CodecError("WAH operands have different group counts")
    result = kernels.combine(op, runs_a, runs_b, _LITERAL_MASK, np.uint32)
    return wah_from_runs(result)


def wah_not(payload: bytes, length: int) -> bytes:
    """Complement of a WAH payload for a vector of ``length`` bits."""
    num_groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
    tail_bits = length % _GROUP_BITS
    runs = runs_from_wah(payload)
    if runs.total != num_groups:
        raise CodecError(
            f"WAH stream has {runs.total} groups, expected {num_groups}"
        )
    tail_mask = (1 << tail_bits) - 1 if tail_bits else None
    result = kernels.complement(runs, _LITERAL_MASK, np.uint32, tail_mask)
    return wah_from_runs(result)


def wah_count(payload: bytes) -> int:
    """Population count of a WAH payload without decompression."""
    return kernels.runs_popcount(runs_from_wah(payload), _GROUP_BITS)
