"""Logical operations directly on WAH-compressed bitmaps.

The WAH counterpart of :mod:`repro.compress.compressed_ops`: AND/OR/XOR
over 32-bit Word-Aligned Hybrid payloads without expanding to bit
arrays.  Both streams are walked as runs of 31-bit groups; fill x fill
runs combine in O(1), fill x literal short-circuits or copies, and
literal x literal falls back to a single 31-bit word operation.  The
writer re-detects fills produced by the operation.

WAH cannot represent a complement without knowing the logical length
(the last group is padded), so :func:`wah_not` takes the bit length,
exactly like :func:`repro.compress.compressed_ops.ewah_not`.
"""

from __future__ import annotations

from repro.compress.wah import (
    _FILL_FLAG,
    _FILL_VALUE_FLAG,
    _GROUP_BITS,
    _LITERAL_MASK,
    _MAX_FILL,
)
from repro.errors import CodecError

import numpy as np

_OPS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


class _Run:
    """Decoded view of one WAH word: a fill run or a literal group."""

    __slots__ = ("is_fill", "value", "count")

    def __init__(self, is_fill: bool, value: int, count: int):
        self.is_fill = is_fill
        self.value = value  # 0/_LITERAL_MASK for fills; group bits for literals
        self.count = count  # groups remaining


def _runs(payload: bytes) -> list[_Run]:
    if len(payload) % 4:
        raise CodecError(f"WAH payload size {len(payload)} not word aligned")
    out: list[_Run] = []
    for word in np.frombuffer(payload, dtype=np.uint32).tolist():
        if word & _FILL_FLAG:
            value = _LITERAL_MASK if word & _FILL_VALUE_FLAG else 0
            out.append(_Run(True, value, word & _MAX_FILL))
        else:
            out.append(_Run(False, word, 1))
    return out


class _Writer:
    """Accumulates groups and emits a canonical WAH stream."""

    def __init__(self) -> None:
        self._words: list[int] = []
        self._fill_value = 0
        self._fill_count = 0

    def _flush_fill(self) -> None:
        while self._fill_count > 0:
            chunk = min(self._fill_count, _MAX_FILL)
            if chunk == 1:
                self._words.append(self._fill_value)
            else:
                flag = _FILL_VALUE_FLAG if self._fill_value else 0
                self._words.append(_FILL_FLAG | flag | chunk)
            self._fill_count -= chunk
        self._fill_count = 0

    def add_fill(self, value: int, count: int) -> None:
        if count <= 0:
            return
        if self._fill_count and value != self._fill_value:
            self._flush_fill()
        self._fill_value = value
        self._fill_count += count

    def add_literal(self, group: int) -> None:
        group &= _LITERAL_MASK
        if group in (0, _LITERAL_MASK):
            self.add_fill(group, 1)
            return
        self._flush_fill()
        self._words.append(group)

    def finish(self) -> bytes:
        self._flush_fill()
        return np.asarray(self._words, dtype=np.uint32).tobytes()


def wah_logical(op: str, payload_a: bytes, payload_b: bytes) -> bytes:
    """``op`` in {"and", "or", "xor"} over equal-group-count WAH payloads."""
    if op not in _OPS:
        raise CodecError(f"unknown compressed operation {op!r}")
    fn = _OPS[op]
    runs_a = _runs(payload_a)
    runs_b = _runs(payload_b)
    writer = _Writer()
    ia = ib = 0
    rem_a = runs_a[0].count if runs_a else 0
    rem_b = runs_b[0].count if runs_b else 0
    while ia < len(runs_a) and ib < len(runs_b):
        run_a, run_b = runs_a[ia], runs_b[ib]
        if run_a.is_fill and run_b.is_fill:
            take = min(rem_a, rem_b)
            writer.add_fill(fn(run_a.value, run_b.value) & _LITERAL_MASK, take)
        else:
            take = 1
            writer.add_literal(fn(run_a.value, run_b.value))
        rem_a -= take
        rem_b -= take
        if rem_a == 0:
            ia += 1
            rem_a = runs_a[ia].count if ia < len(runs_a) else 0
        if rem_b == 0:
            ib += 1
            rem_b = runs_b[ib].count if ib < len(runs_b) else 0
    if ia < len(runs_a) or ib < len(runs_b):
        raise CodecError("WAH operands have different group counts")
    return writer.finish()


def wah_not(payload: bytes, length: int) -> bytes:
    """Complement of a WAH payload for a vector of ``length`` bits."""
    num_groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
    tail_bits = length % _GROUP_BITS
    tail_mask = (1 << tail_bits) - 1 if tail_bits else _LITERAL_MASK
    writer = _Writer()
    emitted = 0
    for run in _runs(payload):
        complemented = (~run.value) & _LITERAL_MASK
        ends_stream = emitted + run.count == num_groups
        if run.is_fill:
            body = run.count - 1 if ends_stream and tail_bits else run.count
            writer.add_fill(complemented, body)
            if ends_stream and tail_bits:
                writer.add_literal(complemented & tail_mask)
        else:
            if ends_stream and tail_bits:
                complemented &= tail_mask
            writer.add_literal(complemented)
        emitted += run.count
    if emitted != num_groups:
        raise CodecError(
            f"WAH stream has {emitted} groups, expected {num_groups}"
        )
    return writer.finish()


def wah_count(payload: bytes) -> int:
    """Population count of a WAH payload without decompression."""
    total = 0
    for run in _runs(payload):
        if run.is_fill:
            if run.value:
                total += run.count * _GROUP_BITS
        else:
            total += bin(run.value).count("1")
    return total
