"""Word-Aligned Hybrid (WAH) codec, 32-bit variant.

WAH is the codec that replaced BBC in FastBit.  It is included here as a
cross-check and ablation partner for the byte-aligned codec: both are
run-length schemes, but WAH trades some compression for word-aligned
decoding.  The format is the classic one:

* the bit sequence is split into groups of 31 bits (the last group is
  zero-padded);
* a *literal word* has MSB 0 and carries one group verbatim;
* a *fill word* has MSB 1, bit 30 the fill value, and bits 29..0 a count
  of consecutive all-equal groups.

Runs longer than ``2**30`` groups are emitted as multiple fill words.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress.base import Codec, register_codec
from repro.errors import CodecError

_GROUP_BITS = 31
_LITERAL_MASK = (1 << _GROUP_BITS) - 1
_FILL_FLAG = 1 << 31
_FILL_VALUE_FLAG = 1 << 30
_MAX_FILL = (1 << 30) - 1


class WahCodec(Codec):
    """32-bit Word-Aligned Hybrid run-length codec."""

    name = "wah"

    def encode(self, vector: BitVector) -> bytes:
        n = len(vector)
        num_groups = (n + _GROUP_BITS - 1) // _GROUP_BITS
        if num_groups == 0:
            return b""
        bits = np.zeros(num_groups * _GROUP_BITS, dtype=bool)
        bits[:n] = vector.to_bools()
        groups = bits.reshape(num_groups, _GROUP_BITS)
        # Group value as a 31-bit integer, LSB = first bit of the group.
        weights = (np.uint64(1) << np.arange(_GROUP_BITS, dtype=np.uint64)).astype(
            np.uint64
        )
        values = (groups.astype(np.uint64) * weights).sum(axis=1).astype(np.uint32)

        words: list[int] = []
        i = 0
        num = values.shape[0]
        vals = values.tolist()
        while i < num:
            value = vals[i]
            if value == 0 or value == _LITERAL_MASK:
                j = i + 1
                while j < num and vals[j] == value:
                    j += 1
                run = j - i
                if run == 1:
                    words.append(value)
                else:
                    fill_bit = _FILL_VALUE_FLAG if value else 0
                    while run > 0:
                        chunk = min(run, _MAX_FILL)
                        words.append(_FILL_FLAG | fill_bit | chunk)
                        run -= chunk
                i = j
            else:
                words.append(value)
                i += 1
        return np.asarray(words, dtype=np.uint32).tobytes()

    def decode(self, payload: bytes, length: int) -> BitVector:
        if len(payload) % 4:
            raise CodecError(f"WAH payload size {len(payload)} not word aligned")
        words = np.frombuffer(payload, dtype=np.uint32)
        num_groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
        values = np.empty(num_groups, dtype=np.uint32)
        pos = 0
        for word in words.tolist():
            if word & _FILL_FLAG:
                run = word & _MAX_FILL
                value = _LITERAL_MASK if word & _FILL_VALUE_FLAG else 0
                if pos + run > num_groups:
                    raise CodecError("WAH stream overruns the declared length")
                values[pos : pos + run] = value
                pos += run
            else:
                if pos >= num_groups:
                    raise CodecError("WAH stream overruns the declared length")
                values[pos] = word
                pos += 1
        if pos != num_groups:
            raise CodecError(
                f"WAH stream produced {pos} groups, expected {num_groups}"
            )
        shifts = np.arange(_GROUP_BITS, dtype=np.uint32)
        bits = ((values[:, None] >> shifts[None, :]) & 1).astype(bool).reshape(-1)
        return BitVector.from_bools(bits[:length])


register_codec(WahCodec())
