"""Word-Aligned Hybrid (WAH) codec, 32-bit variant.

WAH is the codec that replaced BBC in FastBit.  It is included here as a
cross-check and ablation partner for the byte-aligned codec: both are
run-length schemes, but WAH trades some compression for word-aligned
decoding.  The format is the classic one:

* the bit sequence is split into groups of 31 bits (the last group is
  zero-padded);
* a *literal word* has MSB 0 and carries one group verbatim;
* a *fill word* has MSB 1, bit 30 the fill value, and bits 29..0 a count
  of consecutive all-equal groups.

Runs longer than ``2**30`` groups are emitted as multiple fill words.

Encode and decode are built on the vectorized run kernels in
:mod:`repro.compress.kernels`: group values are produced with one
``np.packbits`` pass, segmented into runs with ``np.flatnonzero``, and
the output stream is assembled by bulk scatter — no per-group Python
iteration.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.compress.kernels import DIRTY, FILL_ONE, Runs
from repro.errors import CodecError

_GROUP_BITS = 31
_LITERAL_MASK = (1 << _GROUP_BITS) - 1
_FILL_FLAG = 1 << 31
_FILL_VALUE_FLAG = 1 << 30
_MAX_FILL = (1 << 30) - 1


def group_values(vector: BitVector) -> np.ndarray:
    """The bitmap's 31-bit group values as a ``uint32`` array.

    Each group is padded to 32 bits (high bit zero) so one
    ``np.packbits`` call produces all groups at once; LSB = first bit of
    the group, matching the format's bit order.
    """
    n = len(vector)
    num_groups = (n + _GROUP_BITS - 1) // _GROUP_BITS
    if num_groups == 0:
        return np.empty(0, dtype=np.uint32)
    bits = np.zeros(num_groups * _GROUP_BITS, dtype=bool)
    bits[:n] = vector.to_bools()
    padded = np.zeros((num_groups, 32), dtype=bool)
    padded[:, :_GROUP_BITS] = bits.reshape(num_groups, _GROUP_BITS)
    packed = np.packbits(padded, axis=1, bitorder="little")
    return np.frombuffer(packed.tobytes(), dtype="<u4").astype(np.uint32)


def groups_to_bits(values: np.ndarray, length: int) -> BitVector:
    """Inverse of :func:`group_values`: group array back to a bitmap."""
    if values.shape[0] == 0:
        return BitVector.from_bools(np.empty(0, dtype=bool))
    raw = np.frombuffer(values.astype("<u4").tobytes(), dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little").reshape(-1, 32)[:, :_GROUP_BITS]
    return BitVector.from_bools(bits.reshape(-1)[:length])


def runs_from_wah(payload: bytes) -> Runs:
    """Parse a WAH stream into group runs with whole-array arithmetic."""
    if len(payload) % 4:
        raise CodecError(f"WAH payload size {len(payload)} not word aligned")
    words = np.frombuffer(payload, dtype=np.uint32)
    is_fill = (words & np.uint32(_FILL_FLAG)) != 0
    types = np.full(words.shape[0], DIRTY, dtype=np.int8)
    fill_one = is_fill & ((words & np.uint32(_FILL_VALUE_FLAG)) != 0)
    types[is_fill] = kernels.FILL_ZERO
    types[fill_one] = FILL_ONE
    lengths = np.where(
        is_fill, (words & np.uint32(_MAX_FILL)).astype(np.int64), np.int64(1)
    )
    return Runs(types, lengths, words[~is_fill])


def wah_from_runs(runs: Runs) -> bytes:
    """Emit the canonical WAH stream for ``runs`` via bulk scatter.

    Canonical means the same stream the reference encoder produces: a
    lone fillable group becomes a literal word, longer clean runs become
    fill words.  Falls back to a scalar path only when a clean run
    exceeds the 30-bit fill counter.
    """
    if runs.num_runs == 0:
        return b""
    is_fill = runs.types != DIRTY
    if bool((runs.lengths[is_fill] > _MAX_FILL).any()):
        return _wah_from_runs_chunked(runs)
    counts = np.where(is_fill, np.int64(1), runs.lengths)
    offsets = np.cumsum(counts) - counts
    out = np.empty(int(counts.sum()), dtype=np.uint32)
    if is_fill.any():
        f_len = runs.lengths[is_fill]
        f_one = runs.types[is_fill] == FILL_ONE
        literal = np.where(f_one, np.uint32(_LITERAL_MASK), np.uint32(0))
        fill_word = (
            np.uint32(_FILL_FLAG)
            | np.where(f_one, np.uint32(_FILL_VALUE_FLAG), np.uint32(0))
            | f_len.astype(np.uint32)
        )
        out[offsets[is_fill]] = np.where(f_len == 1, literal, fill_word)
    dirty = ~is_fill
    if dirty.any():
        out[kernels.expand_ranges(offsets[dirty], runs.lengths[dirty])] = runs.values
    return out.tobytes()


def _wah_from_runs_chunked(runs: Runs) -> bytes:
    """Scalar emitter for runs longer than the fill counter allows."""
    words: list[int] = []
    val_pos = 0
    for t, n in zip(runs.types.tolist(), runs.lengths.tolist()):
        if t == DIRTY:
            words.extend(runs.values[val_pos : val_pos + n].tolist())
            val_pos += n
        elif n == 1:
            words.append(_LITERAL_MASK if t == FILL_ONE else 0)
        else:
            fill_bit = _FILL_VALUE_FLAG if t == FILL_ONE else 0
            while n > 0:
                chunk = min(n, _MAX_FILL)
                words.append(_FILL_FLAG | fill_bit | chunk)
                n -= chunk
    return np.asarray(words, dtype=np.uint32).tobytes()


class WahCodec(Codec):
    """32-bit Word-Aligned Hybrid run-length codec."""

    name = "wah"

    def _encode(self, vector: BitVector) -> bytes:
        values = group_values(vector)
        if values.shape[0] == 0:
            return b""
        return wah_from_runs(kernels.runs_from_elements(values, _LITERAL_MASK))

    def _decode(self, payload: bytes, length: int) -> BitVector:
        runs = runs_from_wah(payload)
        num_groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
        total = runs.total
        if total > num_groups:
            raise CodecError("WAH stream overruns the declared length")
        if total != num_groups:
            raise CodecError(
                f"WAH stream produced {total} groups, expected {num_groups}"
            )
        values = kernels.elements_from_runs(runs, _LITERAL_MASK, np.uint32)
        return groups_to_bits(values, length)


register_codec(WahCodec())
