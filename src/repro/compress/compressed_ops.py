"""Logical operations directly on EWAH-compressed bitmaps.

The paper charges decompression CPU for every compressed bitmap a
query touches; the codecs that later superseded BBC (WAH/EWAH) owe
their popularity to *compressed-domain* logical operations, which skip
that cost for the clean (all-0/all-1) runs that dominate compressible
bitmaps.  This module implements AND/OR/XOR/NOT over EWAH payloads
without materializing uncompressed bit vectors:

* both input streams are walked as (clean-run | dirty-word) segments;
* clean x clean combines fill bits in O(1) per overlapping run;
* clean x dirty either short-circuits to a fill (``AND 0``, ``OR 1``)
  or copies/complements the dirty words (``AND 1``, ``OR 0``, XOR);
* dirty x dirty falls back to word-wise numpy ops on just the
  overlapping dirty stretch;
* the writer re-detects clean words produced by the operation (e.g.
  complemented all-ones) so outputs stay canonically compressed.

The evaluation engine uses these through
:class:`~repro.compress.compressed_ops.CompressedBitmap`, and the
``bench_compressed_ops`` benchmark quantifies the saving against
decompress-then-operate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap import BitVector
from repro.compress.base import get_codec
from repro.compress.ewah import EwahCodec, _FULL, _MAX_CLEAN, _MAX_DIRTY, _marker
from repro.errors import CodecError


# ---------------------------------------------------------------------------
# Segment reader
# ---------------------------------------------------------------------------


@dataclass
class _Segment:
    """A stretch of 64-bit words: clean fill or explicit dirty words."""

    is_clean: bool
    fill_bit: int
    words: np.ndarray | None
    count: int


def _segments(payload: bytes) -> list[_Segment]:
    """Decode an EWAH payload into its segment list (no bit expansion)."""
    if len(payload) % 8:
        raise CodecError(f"EWAH payload size {len(payload)} not word aligned")
    stream = np.frombuffer(payload, dtype=np.uint64)
    segments: list[_Segment] = []
    i = 0
    while i < len(stream):
        marker = int(stream[i])
        i += 1
        clean_bit = marker & 1
        clean_count = (marker >> 1) & _MAX_CLEAN
        dirty_count = marker >> 33
        if clean_count:
            segments.append(_Segment(True, clean_bit, None, clean_count))
        if dirty_count:
            if i + dirty_count > len(stream):
                raise CodecError("truncated dirty words in EWAH stream")
            segments.append(
                _Segment(False, 0, stream[i : i + dirty_count], dirty_count)
            )
            i += dirty_count
    return segments


# ---------------------------------------------------------------------------
# Segment writer
# ---------------------------------------------------------------------------


class _Writer:
    """Accumulates output words, re-detecting clean runs, and emits a
    canonical EWAH stream."""

    def __init__(self) -> None:
        self._out: list[int] = []
        self._pending_clean_bit = 0
        self._pending_clean = 0
        self._pending_dirty: list[int] = []

    def add_clean(self, fill_bit: int, count: int) -> None:
        if count <= 0:
            return
        if self._pending_dirty or (
            self._pending_clean and fill_bit != self._pending_clean_bit
        ):
            self._flush()
        self._pending_clean_bit = fill_bit
        self._pending_clean += count

    def add_dirty_words(self, words: np.ndarray) -> None:
        for word in words.tolist():
            word = int(word)
            if word == 0:
                self.add_clean(0, 1)
            elif word == _FULL:
                self.add_clean(1, 1)
            else:
                self._pending_dirty.append(word)
                if len(self._pending_dirty) >= _MAX_DIRTY:
                    self._flush()

    def _flush(self) -> None:
        if not self._pending_clean and not self._pending_dirty:
            return
        clean = self._pending_clean
        bit = self._pending_clean_bit
        while clean > _MAX_CLEAN:
            self._out.append(_marker(bit, _MAX_CLEAN, 0))
            clean -= _MAX_CLEAN
        self._out.append(_marker(bit, clean, len(self._pending_dirty)))
        self._out.extend(self._pending_dirty)
        self._pending_clean = 0
        self._pending_dirty = []

    def finish(self) -> bytes:
        self._flush()
        return np.asarray(self._out, dtype=np.uint64).tobytes()


# ---------------------------------------------------------------------------
# Binary operations
# ---------------------------------------------------------------------------

_OPS = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}


def _combine_clean(op: str, bit_a: int, bit_b: int) -> int:
    return _OPS[op](bit_a, bit_b)


def _clean_absorbs(op: str, fill_bit: int) -> bool:
    """True when a clean run forces the output regardless of the other
    operand (AND with 0-fill, OR with 1-fill)."""
    return (op == "and" and fill_bit == 0) or (op == "or" and fill_bit == 1)


def _clean_passes(op: str, fill_bit: int) -> bool:
    """True when a clean run passes the other operand through unchanged
    (AND 1, OR 0, XOR 0)."""
    if op == "and":
        return fill_bit == 1
    if op == "or":
        return fill_bit == 0
    return fill_bit == 0  # xor


def ewah_logical(op: str, payload_a: bytes, payload_b: bytes) -> bytes:
    """``op`` in {"and", "or", "xor"} over two equal-length EWAH payloads.

    Both payloads must decode to the same number of 64-bit words (the
    codec guarantees that for vectors of equal bit length).
    """
    if op not in _OPS:
        raise CodecError(f"unknown compressed operation {op!r}")
    segs_a = _segments(payload_a)
    segs_b = _segments(payload_b)
    writer = _Writer()

    ia = ib = 0          # segment indices
    oa = ob = 0          # offsets within the current segments
    while ia < len(segs_a) and ib < len(segs_b):
        seg_a, seg_b = segs_a[ia], segs_b[ib]
        take = min(seg_a.count - oa, seg_b.count - ob)
        if seg_a.is_clean and seg_b.is_clean:
            writer.add_clean(
                _combine_clean(op, seg_a.fill_bit, seg_b.fill_bit), take
            )
        elif seg_a.is_clean or seg_b.is_clean:
            clean, dirty, off = (
                (seg_a, seg_b, ob) if seg_a.is_clean else (seg_b, seg_a, oa)
            )
            chunk = dirty.words[off : off + take]
            if _clean_absorbs(op, clean.fill_bit):
                writer.add_clean(clean.fill_bit, take)
            elif _clean_passes(op, clean.fill_bit):
                writer.add_dirty_words(chunk)
            else:
                # XOR with a 1-fill: complement the dirty words.
                writer.add_dirty_words(~chunk)
        else:
            chunk_a = seg_a.words[oa : oa + take]
            chunk_b = seg_b.words[ob : ob + take]
            writer.add_dirty_words(_OPS[op](chunk_a, chunk_b))
        oa += take
        ob += take
        if oa == seg_a.count:
            ia += 1
            oa = 0
        if ob == seg_b.count:
            ib += 1
            ob = 0
    if ia < len(segs_a) or ib < len(segs_b):
        raise CodecError("EWAH operands have different word counts")
    return writer.finish()


def ewah_not(payload: bytes, length: int) -> bytes:
    """Complement of an EWAH payload for a vector of ``length`` bits.

    The final word's padding bits must stay zero, so the last word is
    handled explicitly when the length is not word-aligned.
    """
    writer = _Writer()
    tail_bits = length % 64
    total_words = (length + 63) // 64
    emitted = 0
    for seg in _segments(payload):
        count = seg.count
        # Split off the very last word if it needs padding masking.
        last_in_seg = emitted + count == total_words and tail_bits
        body = count - 1 if last_in_seg else count
        if seg.is_clean:
            writer.add_clean(1 - seg.fill_bit, body)
            if last_in_seg:
                word = _FULL if seg.fill_bit == 0 else 0
                mask = (1 << tail_bits) - 1
                writer.add_dirty_words(
                    np.asarray([word & mask], dtype=np.uint64)
                )
        else:
            inverted = ~seg.words
            if last_in_seg:
                writer.add_dirty_words(inverted[:-1])
                mask = np.uint64((1 << tail_bits) - 1)
                writer.add_dirty_words(
                    np.asarray([inverted[-1] & mask], dtype=np.uint64)
                )
            else:
                writer.add_dirty_words(inverted)
        emitted += count
    return writer.finish()


def ewah_count(payload: bytes) -> int:
    """Population count of an EWAH payload without decompression."""
    total = 0
    for seg in _segments(payload):
        if seg.is_clean:
            if seg.fill_bit:
                total += seg.count * 64
        else:
            total += int(np.bitwise_count(seg.words).sum())
    return total


# ---------------------------------------------------------------------------
# Convenience wrapper
# ---------------------------------------------------------------------------


class CompressedBitmap:
    """An EWAH-compressed bitmap supporting compressed-domain logic.

    Mirrors the :class:`~repro.bitmap.BitVector` operator protocol but
    keeps the payload compressed throughout; :meth:`decode` gives the
    plain vector when record ids are finally needed.
    """

    _codec: EwahCodec = None  # type: ignore[assignment]

    def __init__(self, payload: bytes, length: int):
        self.payload = payload
        self.length = length

    @classmethod
    def from_vector(cls, vector: BitVector) -> "CompressedBitmap":
        codec = get_codec("ewah")
        return cls(codec.encode(vector), len(vector))

    def decode(self) -> BitVector:
        """Materialize the plain bit vector."""
        return get_codec("ewah").decode(self.payload, self.length)

    def _check(self, other: "CompressedBitmap") -> None:
        if self.length != other.length:
            raise CodecError(
                f"length mismatch: {self.length} vs {other.length}"
            )

    def __and__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        self._check(other)
        return CompressedBitmap(
            ewah_logical("and", self.payload, other.payload), self.length
        )

    def __or__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        self._check(other)
        return CompressedBitmap(
            ewah_logical("or", self.payload, other.payload), self.length
        )

    def __xor__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        self._check(other)
        return CompressedBitmap(
            ewah_logical("xor", self.payload, other.payload), self.length
        )

    def __invert__(self) -> "CompressedBitmap":
        return CompressedBitmap(
            ewah_not(self.payload, self.length), self.length
        )

    def count(self) -> int:
        """Set-bit count, computed in the compressed domain."""
        return ewah_count(self.payload)

    def compressed_size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompressedBitmap):
            return NotImplemented
        # Payloads are canonical only up to run merging; compare decoded.
        return self.length == other.length and self.decode() == other.decode()

    def __repr__(self) -> str:
        return (
            f"CompressedBitmap(length={self.length}, "
            f"bytes={len(self.payload)})"
        )
