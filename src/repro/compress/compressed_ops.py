"""Logical operations directly on EWAH-compressed bitmaps.

The paper charges decompression CPU for every compressed bitmap a
query touches; the codecs that later superseded BBC (WAH/EWAH) owe
their popularity to *compressed-domain* logical operations, which skip
that cost for the clean (all-0/all-1) runs that dominate compressible
bitmaps.  This module implements AND/OR/XOR/NOT over EWAH payloads
without materializing uncompressed bit vectors.

Both input streams are parsed into run arrays
(:func:`repro.compress.ewah.runs_from_ewah`) and combined by the
vectorized kernels in :mod:`repro.compress.kernels`:

* run alignment is a ``searchsorted`` merge over the union of both
  streams' run boundaries — no Python cursor loop;
* clean x clean overlaps combine fill bits in O(1) per overlap;
* every overlap touching dirty words — including dirty x dirty — is
  computed by a single numpy op over the whole stretch;
* clean words produced by the operation (e.g. complemented all-ones)
  are re-detected in bulk so outputs stay canonically compressed.

The evaluation engine uses these through
:class:`~repro.compress.compressed_ops.CompressedBitmap`, which since
the roaring extension dispatches per codec: the module-level
``LOGICAL_OPS`` / ``NOT_OPS`` / ``COUNT_OPS`` tables give every
compressed-domain codec (BBC, WAH, EWAH, roaring) one payload-level
signature, and ``COMPRESSED_DOMAIN_CODECS`` names the codecs the
compressed query engine accepts.  The ``bench_compressed_ops``
benchmark quantifies the saving against decompress-then-operate.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import get_codec
from repro.compress.bbc_ops import bbc_count, bbc_logical, bbc_not
from repro.compress.ewah import _FULL, ewah_from_runs, runs_from_ewah
from repro.compress.roaring_ops import roaring_count, roaring_logical, roaring_not
from repro.compress.wah_ops import wah_count, wah_logical, wah_not
from repro.errors import CodecError


def ewah_logical(op: str, payload_a: bytes, payload_b: bytes) -> bytes:
    """``op`` in {"and", "or", "xor"} over two equal-length EWAH payloads.

    Both payloads must decode to the same number of 64-bit words (the
    codec guarantees that for vectors of equal bit length).
    """
    if op not in kernels._NP_OPS:
        raise CodecError(f"unknown compressed operation {op!r}")
    runs_a = runs_from_ewah(payload_a)
    runs_b = runs_from_ewah(payload_b)
    if runs_a.total != runs_b.total:
        raise CodecError("EWAH operands have different word counts")
    result = kernels.combine(op, runs_a, runs_b, _FULL, np.uint64)
    return ewah_from_runs(result)


def ewah_not(payload: bytes, length: int) -> bytes:
    """Complement of an EWAH payload for a vector of ``length`` bits.

    The final word's padding bits must stay zero, so the last word is
    masked explicitly when the length is not word-aligned.
    """
    tail_bits = length % 64
    tail_mask = (1 << tail_bits) - 1 if tail_bits else None
    runs = runs_from_ewah(payload)
    result = kernels.complement(runs, _FULL, np.uint64, tail_mask)
    return ewah_from_runs(result)


def ewah_count(payload: bytes) -> int:
    """Population count of an EWAH payload without decompression."""
    return kernels.runs_popcount(runs_from_ewah(payload), 64)


# ---------------------------------------------------------------------------
# Per-codec compressed-domain dispatch
# ---------------------------------------------------------------------------

#: ``(op, payload_a, payload_b, length) -> payload`` per codec.
LOGICAL_OPS = {
    "bbc": bbc_logical,
    "wah": lambda op, a, b, length: wah_logical(op, a, b),
    "ewah": lambda op, a, b, length: ewah_logical(op, a, b),
    "roaring": roaring_logical,
}

#: ``(payload, length) -> payload`` per codec.
NOT_OPS = {
    "bbc": bbc_not,
    "wah": wah_not,
    "ewah": ewah_not,
    "roaring": roaring_not,
}

#: ``(payload) -> int`` per codec.
COUNT_OPS = {
    "bbc": bbc_count,
    "wah": wah_count,
    "ewah": ewah_count,
    "roaring": roaring_count,
}

#: Codecs whose payloads support the full compressed-domain protocol.
#: A plain (mutable) set: modules that add codecs extend it through
#: :func:`register_compressed_ops`, and by-name importers (the
#: compressed query engine) observe the additions because the set
#: object itself is shared.
COMPRESSED_DOMAIN_CODECS = set(LOGICAL_OPS)


def register_compressed_ops(name: str, logical, not_, count) -> None:
    """Register a codec's payload-level compressed-domain operations.

    ``logical`` is ``(op, payload_a, payload_b, length) -> payload``,
    ``not_`` is ``(payload, length) -> payload`` and ``count`` is
    ``(payload) -> int``.  Registration adds ``name`` to
    :data:`COMPRESSED_DOMAIN_CODECS`, which is all
    :class:`CompressedBitmap` and the compressed query engine consult —
    no per-codec conditionals anywhere downstream.
    """
    if not name:
        raise CodecError("compressed-domain ops need a codec name")
    LOGICAL_OPS[name] = logical
    NOT_OPS[name] = not_
    COUNT_OPS[name] = count
    COMPRESSED_DOMAIN_CODECS.add(name)


# ---------------------------------------------------------------------------
# Convenience wrapper
# ---------------------------------------------------------------------------


class CompressedBitmap:
    """A compressed bitmap supporting compressed-domain logic.

    Mirrors the :class:`~repro.bitmap.BitVector` operator protocol but
    keeps the payload compressed throughout; :meth:`decode` gives the
    plain vector when record ids are finally needed.  Any codec in
    :data:`COMPRESSED_DOMAIN_CODECS` works (EWAH remains the default);
    operands must share both length and codec.
    """

    def __init__(self, payload: bytes, length: int, codec: str = "ewah"):
        if codec not in COMPRESSED_DOMAIN_CODECS:
            raise CodecError(
                f"codec {codec!r} has no compressed-domain operations; "
                f"available: {sorted(COMPRESSED_DOMAIN_CODECS)}"
            )
        self.payload = payload
        self.length = length
        self.codec = codec

    @classmethod
    def from_vector(cls, vector: BitVector, codec: str = "ewah") -> "CompressedBitmap":
        return cls(get_codec(codec).encode(vector), len(vector), codec)

    def decode(self) -> BitVector:
        """Materialize the plain bit vector."""
        return get_codec(self.codec).decode(self.payload, self.length)

    def decode_blockwise(self, block_words: int = 2048) -> BitVector:
        """Materialize block-at-a-time through the codec's stream kernel.

        Identical result and ``codec.decode.*`` accounting to
        :meth:`decode`; the decode scratch stays block-sized instead of
        scaling with the run count.
        """
        return get_codec(self.codec).decode_blockwise(
            self.payload, self.length, block_words
        )

    def _check(self, other: "CompressedBitmap") -> None:
        if self.length != other.length:
            raise CodecError(
                f"length mismatch: {self.length} vs {other.length}"
            )
        if self.codec != other.codec:
            raise CodecError(
                f"codec mismatch: {self.codec!r} vs {other.codec!r}"
            )

    def _logical(self, other: "CompressedBitmap", op: str) -> "CompressedBitmap":
        self._check(other)
        payload = LOGICAL_OPS[self.codec](
            op, self.payload, other.payload, self.length
        )
        return CompressedBitmap(payload, self.length, self.codec)

    def __and__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        return self._logical(other, "and")

    def __or__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        return self._logical(other, "or")

    def __xor__(self, other: "CompressedBitmap") -> "CompressedBitmap":
        return self._logical(other, "xor")

    def __invert__(self) -> "CompressedBitmap":
        return CompressedBitmap(
            NOT_OPS[self.codec](self.payload, self.length),
            self.length,
            self.codec,
        )

    def count(self) -> int:
        """Set-bit count, computed in the compressed domain."""
        return COUNT_OPS[self.codec](self.payload)

    def compressed_size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompressedBitmap):
            return NotImplemented
        # Payloads are canonical only per codec; compare decoded.
        return self.length == other.length and self.decode() == other.decode()

    def __repr__(self) -> str:
        return (
            f"CompressedBitmap(codec={self.codec!r}, length={self.length}, "
            f"bytes={len(self.payload)})"
        )
