"""Block-at-a-time decode streams over encoded bitmap payloads.

The fused expression evaluator (:mod:`repro.expr.fused`) walks a query
tree in word blocks small enough to stay in L1/L2, so no expression
intermediate is ever a full-vector allocation.  For that it needs leaf
decode to be *incremental*: given an encoded payload, produce any word
window ``[start, stop)`` of the decoded vector without materializing
the rest.

Each codec gets a :class:`BlockStream`:

* **raw** — the payload *is* the word array; blocks are zero-copy
  ``numpy`` slices of it (and of the mmap when the payload is a
  :class:`~repro.storage.mmap_store.MappedDirectoryStore` view);
* **ewah** — word-granular runs; a :class:`~repro.compress.kernels.RunSlicer`
  window rematerializes exactly the requested words;
* **bbc** — byte-granular runs; the byte window is rematerialized and
  viewed as words, synthesizing the trailing zero bytes the encoder
  trimmed;
* **wah** — 31-bit groups do not align to 64-bit words, so the group
  window covering the block is rematerialized, bit-unpacked, shifted to
  the block's bit offset and repacked — the only codec that needs
  bit-level realignment;
* **roaring** — the container directory is an index: blocks gather only
  the containers overlapping the window (bitmap containers by word
  slice, array/run containers by position scatter).

Every stream validates its payload against the declared length at
construction time, raising the same :class:`~repro.errors.CodecError`
conditions as the codec's whole-vector ``decode``.  The arrays returned
by :meth:`BlockStream.block` may be read-only views or a scratch buffer
reused by the next call — callers must copy or combine, never hold.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.bbc import _FULL_BYTE, runs_from_bbc
from repro.compress.ewah import _FULL, runs_from_ewah
from repro.compress.roaring import (
    ARRAY,
    BITMAP,
    CHUNK_BITS,
    CHUNK_WORDS,
    chunk_geometry,
    containers_from_roaring,
)
from repro.compress.wah import _GROUP_BITS, runs_from_wah
from repro.errors import CodecError

_ONE = np.uint64(1)


def _num_words(length: int) -> int:
    return (length + 63) // 64


class BlockStream:
    """Incremental word-window access to one encoded bitmap.

    ``length`` is the logical bit length, ``num_words`` the decoded
    word count; :meth:`block` returns the decoded ``uint64`` words of
    ``[start, stop)`` (``stop`` capped at ``num_words`` by the caller).
    The returned array may alias internal or mapped memory and may be
    overwritten by the next :meth:`block` call.
    """

    def __init__(self, length: int):
        self.length = int(length)
        self.num_words = _num_words(length)

    def block(self, start: int, stop: int) -> np.ndarray:
        raise NotImplementedError


class VectorStream(BlockStream):
    """Zero-copy window view over an already-decoded vector."""

    def __init__(self, vector: BitVector):
        super().__init__(len(vector))
        self._words = vector.words

    def block(self, start: int, stop: int) -> np.ndarray:
        return self._words[start:stop]


class RawStream(BlockStream):
    """Zero-copy window view over a raw word payload."""

    def __init__(self, payload, length: int):
        super().__init__(length)
        expected = self.num_words * 8
        if len(payload) != expected:
            raise CodecError(
                f"raw payload has {len(payload)} bytes; length {length} "
                f"needs {expected}"
            )
        self._words = np.frombuffer(payload, dtype=np.uint64)

    def block(self, start: int, stop: int) -> np.ndarray:
        return self._words[start:stop]


class EwahStream(BlockStream):
    """Word-run window rematerialization of an EWAH stream."""

    def __init__(self, payload, length: int):
        super().__init__(length)
        runs = runs_from_ewah(payload)
        total = runs.total
        if total > self.num_words:
            raise CodecError("EWAH stream overruns the declared length")
        if total != self.num_words:
            raise CodecError(
                f"EWAH stream produced {total} words, expected {self.num_words}"
            )
        self._slicer = kernels.RunSlicer(runs)

    def block(self, start: int, stop: int) -> np.ndarray:
        window = self._slicer.slice(start, stop)
        return kernels.elements_from_runs(window, _FULL, np.uint64)


class BbcStream(BlockStream):
    """Byte-run window rematerialization of a BBC atom stream.

    The encoder trims trailing zero bytes, so a window past the stream
    end is padded with zeros; windows also extend past the logical byte
    length up to the word boundary (those padding bytes are zero too).
    """

    def __init__(self, payload, length: int):
        super().__init__(length)
        logical_bytes = (length + 7) // 8
        runs = runs_from_bbc(payload)
        if runs.total > logical_bytes:
            raise CodecError(
                f"BBC stream decodes to {runs.total} bytes but length "
                f"{length} allows only {logical_bytes}"
            )
        self._slicer = kernels.RunSlicer(runs)

    def block(self, start: int, stop: int) -> np.ndarray:
        nbytes = (stop - start) * 8
        window = self._slicer.slice(start * 8, stop * 8)
        out = np.zeros(nbytes, dtype=np.uint8)
        body = kernels.elements_from_runs(window, _FULL_BYTE, np.uint8)
        out[: body.shape[0]] = body
        return out.view(np.uint64)


class WahStream(BlockStream):
    """Bit-realigned window rematerialization of a WAH stream.

    WAH's 31-bit groups straddle 64-bit word boundaries, so a word
    window maps to a group window plus a bit offset: the overlapped
    groups are rematerialized, unpacked to bits, shifted and repacked.
    The scratch arrays are proportional to the block, not the vector.
    """

    def __init__(self, payload, length: int):
        super().__init__(length)
        num_groups = (length + _GROUP_BITS - 1) // _GROUP_BITS
        runs = runs_from_wah(payload)
        total = runs.total
        if total > num_groups:
            raise CodecError("WAH stream overruns the declared length")
        if total != num_groups:
            raise CodecError(
                f"WAH stream produced {total} groups, expected {num_groups}"
            )
        self._slicer = kernels.RunSlicer(runs)
        self._num_groups = num_groups

    def block(self, start: int, stop: int) -> np.ndarray:
        bit_lo = start * 64
        bit_hi = min(stop * 64, self._num_groups * _GROUP_BITS)
        g_lo = bit_lo // _GROUP_BITS
        g_hi = min(-(-bit_hi // _GROUP_BITS), self._num_groups) if bit_hi > bit_lo else g_lo
        groups = kernels.elements_from_runs(
            self._slicer.slice(g_lo, g_hi), (1 << _GROUP_BITS) - 1, np.uint32
        )
        out_bits = np.zeros((stop - start) * 64, dtype=bool)
        if groups.shape[0]:
            raw = np.frombuffer(groups.astype("<u4").tobytes(), dtype=np.uint8)
            bits = np.unpackbits(raw, bitorder="little").reshape(-1, 32)[
                :, :_GROUP_BITS
            ].reshape(-1)
            offset = bit_lo - g_lo * _GROUP_BITS
            usable = min(bits.shape[0] - offset, bit_hi - bit_lo)
            out_bits[:usable] = bits[offset : offset + usable]
        packed = np.packbits(out_bits, bitorder="little")
        return packed.view(np.uint64)


class RoaringStream(BlockStream):
    """Container-directory window gather of a roaring stream.

    The directory is already an index over 2^16-bit chunks: a word
    window touches only the containers whose chunk overlaps it, found
    with one ``searchsorted`` over the (ascending) key column.
    """

    def __init__(self, payload, length: int):
        super().__init__(length)
        containers = containers_from_roaring(payload)
        num_chunks = (length + CHUNK_BITS - 1) // CHUNK_BITS
        for container in containers:
            if container.key >= num_chunks:
                raise CodecError(
                    f"roaring container key {container.key} overruns the "
                    f"declared length {length}"
                )
            chunk_bits, chunk_words = chunk_geometry(container.key, length)
            if container.kind == BITMAP:
                if container.data.shape[0] != chunk_words:
                    raise CodecError(
                        f"roaring bitmap container has "
                        f"{container.data.shape[0]} words, chunk "
                        f"{container.key} holds {chunk_words}"
                    )
            elif container.kind == ARRAY:
                if int(container.data[-1]) >= chunk_bits:
                    raise CodecError(
                        "roaring array container overruns the declared length"
                    )
            else:
                starts, lengths = container.data
                if int((starts.astype(np.int64) + lengths).max()) > chunk_bits:
                    raise CodecError(
                        "roaring run container overruns the declared length"
                    )
        self._containers = containers
        self._keys = np.asarray([c.key for c in containers], dtype=np.int64)

    def block(self, start: int, stop: int) -> np.ndarray:
        out = np.zeros(stop - start, dtype=np.uint64)
        lo = int(np.searchsorted(self._keys, start // CHUNK_WORDS, side="left"))
        hi = int(np.searchsorted(self._keys, -(-stop // CHUNK_WORDS), side="left"))
        for container in self._containers[lo:hi]:
            word_base = container.key * CHUNK_WORDS
            if container.kind == BITMAP:
                src_lo = max(start - word_base, 0)
                src_hi = min(stop - word_base, container.data.shape[0])
                dst = word_base + src_lo - start
                out[dst : dst + (src_hi - src_lo)] = container.data[src_lo:src_hi]
                continue
            # Positions relative to the window's first bit.
            if container.kind == ARRAY:
                rel = container.data.astype(np.int64)
            else:
                starts, lengths = container.data
                rel = kernels.expand_ranges(starts.astype(np.int64), lengths)
            pos = rel + (word_base - start) * 64
            pos = pos[(pos >= 0) & (pos < out.shape[0] * 64)]
            if pos.size:
                np.bitwise_or.at(
                    out, pos >> 6, _ONE << (pos & 63).astype(np.uint64)
                )
        return out


_STREAMS = {
    "raw": RawStream,
    "ewah": EwahStream,
    "bbc": BbcStream,
    "wah": WahStream,
    "roaring": RoaringStream,
}


def register_stream(codec_name: str, factory) -> None:
    """Register a block-stream factory for a codec.

    ``factory`` is called as ``factory(payload, length)`` and must
    return a :class:`BlockStream`; a class or a plain function both
    work.  Everything block-oriented (fused evaluation, multiway
    thresholds, blockwise decode) dispatches through
    :func:`open_stream`, so registration is all a new codec needs.
    """
    if not codec_name:
        raise CodecError("block streams need a codec name")
    _STREAMS[codec_name] = factory


def open_stream(codec_name: str, payload, length: int) -> BlockStream:
    """A :class:`BlockStream` over ``payload`` for the named codec."""
    try:
        cls = _STREAMS[codec_name]
    except KeyError:
        raise CodecError(
            f"codec {codec_name!r} has no block stream; "
            f"available: {sorted(_STREAMS)}"
        ) from None
    return cls(payload, length)


def decode_blockwise(
    codec_name: str, payload, length: int, block_words: int = 2048
) -> BitVector:
    """Materialize a full vector through its block stream.

    Used by the compressed engine's final answer decode: identical
    output to ``codec.decode`` but the decode scratch stays block-sized
    (the output array is the answer, not an intermediate).
    """
    stream = open_stream(codec_name, payload, length)
    words = np.empty(stream.num_words, dtype=np.uint64)
    for lo in range(0, stream.num_words, block_words):
        hi = min(lo + block_words, stream.num_words)
        words[lo:hi] = stream.block(lo, hi)
    tail = length % 64
    if tail and words.shape[0]:
        words[-1] &= (_ONE << np.uint64(tail)) - _ONE
    return BitVector(length, words)
