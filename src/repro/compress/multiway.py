"""N-way merges and threshold (k-of-N) kernels over encoded bitmaps.

Pairwise compressed-domain operations evaluate a wide OR/AND as a
left-fold, re-touching every intermediate result N-2 times; Kaser &
Lemire ("Compressed bitmap indexes: beyond unions and intersections")
show that streaming the N inputs *simultaneously* answers the same
query — and the more general symmetric threshold function "at least k
of N" — in one pass that never materializes an intermediate.

This module is that one pass, built on the block cursors of
:mod:`repro.compress.streams`: the N inputs advance in lockstep through
word windows (a k-way merge at block granularity — raw/WAH/EWAH/BBC
streams rematerialize only the runs overlapping the window, roaring
streams gather only the containers overlapping it, so the merge sees
runs/containers, never whole vectors), and each window is either

* reduced with the operator (:func:`multiway_logical`), or
* counted with a word-parallel **bit-sliced counter**
  (:class:`ThresholdCounter`): ``ceil(log2(N+1))`` word slices hold,
  per bit position, the binary count of inputs that have that bit set;
  each input is ripple-carry added in O(width) bulk ops and the final
  ``count >= k`` compare is a bitwise magnitude comparison against the
  constant ``k`` (:func:`multiway_threshold`, :func:`threshold_vectors`).

Total work is ``O(N * words * log N)`` bulk word operations with
``O(log N)`` block-sized scratch — independent of how many
intermediates a fold would have allocated.  The cost model charges a
multi-way op by the compressed bytes actually streamed (the sum of the
input payload sizes), which is why it beats the fold's accounting for
N >= 3: the fold also re-charges every intermediate.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress.streams import BlockStream, VectorStream, open_stream
from repro.errors import BitmapError

#: Words per lockstep window (16 KiB — matches the fused evaluator's
#: default so threshold plans and multiway merges share cache behaviour).
DEFAULT_BLOCK_WORDS = 2048

_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

_REDUCERS = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


def counter_width(n: int) -> int:
    """Bit slices needed to count ``n`` one-bit inputs without overflow."""
    if n < 1:
        raise BitmapError(f"counter needs at least one input, got {n}")
    return int(n).bit_length()


class ThresholdCounter:
    """Word-parallel bit-sliced counter over up to ``n`` bitmap blocks.

    ``slices[i]`` holds bit ``i`` of the per-position count: after
    adding blocks ``b_1..b_m`` (``m <= n``), bit position ``p`` of the
    slices spells the binary number ``|{j : b_j has bit p set}|``.
    :meth:`add` is a ripple-carry increment (2 bulk ops per slice);
    :meth:`compare_ge` extracts ``count >= k`` with one pass from the
    most significant slice down, maintaining *greater* and *equal*
    accumulators against the constant ``k``.
    """

    def __init__(self, n: int, block_words: int):
        self.width = counter_width(n)
        self.slices = [
            np.empty(block_words, dtype=np.uint64) for _ in range(self.width)
        ]
        self._carry = np.empty(block_words, dtype=np.uint64)
        self._tmp = np.empty(block_words, dtype=np.uint64)
        self._eq = np.empty(block_words, dtype=np.uint64)

    def reset(self, num_words: int) -> None:
        """Zero the counters for a window of ``num_words`` words."""
        for s in self.slices:
            s[:num_words] = 0

    def add(self, block: np.ndarray) -> None:
        """Ripple-carry add one input block into the counter slices."""
        n = len(block)
        carry, tmp = self._carry, self._tmp
        np.copyto(carry[:n], block)
        for s in self.slices:
            np.bitwise_and(s[:n], carry[:n], out=tmp[:n])
            np.bitwise_xor(s[:n], carry[:n], out=s[:n])
            carry, tmp = tmp, carry
        self._carry, self._tmp = carry, tmp

    def compare_ge(self, k: int, out: np.ndarray) -> None:
        """Write ``count >= k`` into ``out`` (``k >= 1``, fits the width).

        MSB-to-LSB bitwise magnitude comparison: ``gt`` accumulates
        positions already decided greater than ``k``'s prefix, ``eq``
        the positions still tied; a set count bit where ``k``'s bit is
        clear turns a tie into greater, a clear count bit where ``k``'s
        bit is set eliminates the tie.
        """
        n = len(out)
        gt = out
        eq, tmp, scratch = self._eq, self._tmp, self._carry
        gt[:n] = 0
        eq[:n] = _FULL
        for i in reversed(range(self.width)):
            c = self.slices[i]
            if (k >> i) & 1:
                np.bitwise_and(eq[:n], c[:n], out=eq[:n])
            else:
                np.bitwise_and(eq[:n], c[:n], out=tmp[:n])
                np.bitwise_or(gt[:n], tmp[:n], out=gt[:n])
                np.bitwise_not(c[:n], out=scratch[:n])
                np.bitwise_and(eq[:n], scratch[:n], out=eq[:n])
        np.bitwise_or(gt[:n], eq[:n], out=gt[:n])


def _check_streams(streams: Sequence[BlockStream], length: int) -> None:
    if not streams:
        raise BitmapError("multiway operation needs at least one input")
    for stream in streams:
        if stream.length != length:
            raise BitmapError(
                f"multiway input has length {stream.length}, "
                f"expected {length}"
            )


def _mask_tail(words: np.ndarray, length: int) -> None:
    tail = length % 64
    if tail and len(words):
        words[-1] &= (_ONE << np.uint64(tail)) - _ONE


def threshold_streams(
    k: int,
    streams: Sequence[BlockStream],
    length: int,
    block_words: int = DEFAULT_BLOCK_WORDS,
) -> np.ndarray:
    """Decoded words of "at least ``k`` of ``streams``", one lockstep pass.

    ``k <= 0`` yields all ones, ``k > len(streams)`` all zeros; padding
    bits beyond ``length`` are masked off.  Emits the
    ``expr.threshold.*`` counters when observability is installed.
    """
    _check_streams(streams, length)
    num_words = (length + 63) // 64
    out = np.empty(num_words, dtype=np.uint64)
    n = len(streams)
    o = _obs.active()
    if o is not None:
        o.count("expr.threshold.evals", 1)
        o.count("expr.threshold.children", n)
    if k <= 0:
        out[:] = _FULL
        _mask_tail(out, length)
        return out
    if k > n:
        out[:] = 0
        return out
    block_words = max(1, int(block_words))
    counter = ThresholdCounter(n, min(block_words, max(1, num_words)))
    for lo in range(0, num_words, block_words):
        hi = min(lo + block_words, num_words)
        counter.reset(hi - lo)
        for stream in streams:
            counter.add(stream.block(lo, hi))
        counter.compare_ge(k, out[lo:hi])
    _mask_tail(out, length)
    return out


def threshold_vectors(k: int, vectors: Sequence[BitVector]) -> BitVector:
    """"At least ``k`` of ``vectors``" over decoded bit vectors.

    The vectors are wrapped in zero-copy streams and counted blockwise,
    so the only full-length allocation is the answer — the materializing
    evaluator's Threshold node goes through here.
    """
    if not vectors:
        raise BitmapError("threshold needs at least one input vector")
    length = len(vectors[0])
    streams = [VectorStream(v) for v in vectors]
    return BitVector(length, threshold_streams(k, streams, length))


def multiway_threshold(
    k: int,
    codec_name: str,
    payloads: Sequence,
    length: int,
    block_words: int = DEFAULT_BLOCK_WORDS,
) -> BitVector:
    """"At least ``k`` of ``payloads``" streamed straight off the codec.

    Each payload decodes incrementally through its
    :class:`~repro.compress.streams.BlockStream` (runs for WAH/EWAH/BBC,
    containers for roaring), so N encoded bitmaps are combined without
    decoding any of them whole.
    """
    streams = [open_stream(codec_name, p, length) for p in payloads]
    return BitVector(
        length, threshold_streams(k, streams, length, block_words)
    )


def multiway_logical(
    op: str,
    codec_name: str,
    payloads: Sequence,
    length: int,
    block_words: int = DEFAULT_BLOCK_WORDS,
) -> BitVector:
    """N-way ``and``/``or``/``xor`` over encoded payloads in one pass.

    Equivalent to the left-fold of pairwise compressed-domain ops but
    with zero intermediate payloads: every input block is combined into
    the output accumulator the moment it is decoded.
    """
    if op not in _REDUCERS:
        raise BitmapError(
            f"unknown multiway operator {op!r}; expected one of "
            f"{sorted(_REDUCERS)}"
        )
    reducer = _REDUCERS[op]
    streams = [open_stream(codec_name, p, length) for p in payloads]
    _check_streams(streams, length)
    num_words = (length + 63) // 64
    out = np.empty(num_words, dtype=np.uint64)
    block_words = max(1, int(block_words))
    for lo in range(0, num_words, block_words):
        hi = min(lo + block_words, num_words)
        acc = out[lo:hi]
        acc[:] = streams[0].block(lo, hi)
        for stream in streams[1:]:
            reducer(acc, stream.block(lo, hi), out=acc)
    _mask_tail(out, length)
    return BitVector(length, out)
