"""Logical operations directly on roaring-compressed bitmaps.

Roaring's container directory makes the compressed domain *the* natural
place to operate (Kaser & Lemire, "Compressed bitmap indexes: beyond
unions and intersections"): AND touches only chunks present on both
sides, OR/XOR copy single-sided containers verbatim, and each matched
pair dispatches on its container kinds:

* array x array — galloping intersection / sorted-set union / symmetric
  difference via ``np.searchsorted`` and the ``1d`` set routines;
* bitmap x bitmap — one vectorized word operation per chunk;
* mixed (array vs bitmap/run) — membership tests of the array's
  offsets against the dense side's words;
* run containers are expanded through
  :func:`repro.compress.kernels.expand_ranges` when an operation needs
  them dense.

Results are re-classified through the shared container constructors in
:mod:`repro.compress.roaring`, so outputs are bit-identical to
re-encoding the decoded result — the canonical-form property the
differential suite checks for every codec.

All entry points take the logical bit length: roaring drops empty
chunks, so the payload alone cannot bound the domain (NOT must
materialize the missing chunks as full runs, and validation needs to
know where the vector ends).
"""

from __future__ import annotations

import numpy as np

from repro.compress import kernels
from repro.compress.roaring import (
    ARRAY,
    BITMAP,
    CHUNK_BITS,
    RUN,
    Container,
    chunk_geometry,
    container_from_positions,
    container_from_runs,
    container_from_words,
    containers_from_roaring,
    roaring_bytes,
)
from repro.errors import CodecError

_ONE = np.uint64(1)


def _directory(payload: bytes, length: int) -> dict[int, Container]:
    """Parse ``payload`` and validate its chunks against ``length``."""
    num_chunks = (length + CHUNK_BITS - 1) // CHUNK_BITS
    directory: dict[int, Container] = {}
    for container in containers_from_roaring(payload):
        if container.key >= num_chunks:
            raise CodecError(
                f"roaring container key {container.key} overruns the "
                f"declared length {length}"
            )
        directory[container.key] = container
    return directory


def _positions_of(container: Container) -> np.ndarray:
    """The container's chunk-relative set positions, sorted, as int64."""
    if container.kind == ARRAY:
        return container.data.astype(np.int64)
    if container.kind == RUN:
        starts, lengths = container.data
        return kernels.expand_ranges(starts, lengths)
    return np.flatnonzero(
        np.unpackbits(container.data.view(np.uint8), bitorder="little")
    ).astype(np.int64)


def _words_of(container: Container, chunk_words: int) -> np.ndarray:
    """The container's chunk as 64-bit words (bitmap containers as-is)."""
    if container.kind == BITMAP:
        return container.data
    words = np.zeros(chunk_words, dtype=np.uint64)
    rel = _positions_of(container)
    np.bitwise_or.at(words, rel >> 6, _ONE << (rel & 63).astype(np.uint64))
    return words


def _members(rel: np.ndarray, words: np.ndarray) -> np.ndarray:
    """Boolean mask: which positions in ``rel`` are set in ``words``."""
    bits = (words[rel >> 6] >> (rel & 63).astype(np.uint64)) & _ONE
    return bits != 0


def _intersect_sorted(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Galloping intersection of two sorted arrays (search the larger)."""
    if x.size > y.size:
        x, y = y, x
    idx = np.searchsorted(y, x)
    hit = idx < y.size
    hit[hit] = y[idx[hit]] == x[hit]
    return x[hit]


def _and_pair(a: Container, b: Container, chunk_bits: int) -> Container | None:
    chunk_words = (chunk_bits + 63) // 64
    if a.kind == ARRAY and b.kind == ARRAY:
        rel = _intersect_sorted(_positions_of(a), _positions_of(b))
        return container_from_positions(a.key, rel, chunk_bits)
    if a.kind == ARRAY or b.kind == ARRAY:
        sparse, dense = (a, b) if a.kind == ARRAY else (b, a)
        rel = _positions_of(sparse)
        rel = rel[_members(rel, _words_of(dense, chunk_words))]
        return container_from_positions(a.key, rel, chunk_bits)
    words = _words_of(a, chunk_words) & _words_of(b, chunk_words)
    return container_from_words(a.key, words, chunk_bits)


def _or_pair(a: Container, b: Container, chunk_bits: int) -> Container | None:
    if a.kind == ARRAY and b.kind == ARRAY:
        rel = np.union1d(_positions_of(a), _positions_of(b))
        return container_from_positions(a.key, rel, chunk_bits)
    chunk_words = (chunk_bits + 63) // 64
    words = _words_of(a, chunk_words) | _words_of(b, chunk_words)
    return container_from_words(a.key, words, chunk_bits)


def _xor_pair(a: Container, b: Container, chunk_bits: int) -> Container | None:
    if a.kind == ARRAY and b.kind == ARRAY:
        rel = np.setxor1d(_positions_of(a), _positions_of(b), assume_unique=True)
        return container_from_positions(a.key, rel, chunk_bits)
    chunk_words = (chunk_bits + 63) // 64
    words = _words_of(a, chunk_words) ^ _words_of(b, chunk_words)
    return container_from_words(a.key, words, chunk_bits)


_PAIR_OPS = {"and": _and_pair, "or": _or_pair, "xor": _xor_pair}


def roaring_logical(
    op: str, payload_a: bytes, payload_b: bytes, length: int
) -> bytes:
    """``op`` in {"and", "or", "xor"} over two ``length``-bit payloads."""
    try:
        pair_op = _PAIR_OPS[op]
    except KeyError:
        raise CodecError(f"unknown compressed operation {op!r}") from None
    dir_a = _directory(payload_a, length)
    dir_b = _directory(payload_b, length)
    if op == "and":
        keys = sorted(dir_a.keys() & dir_b.keys())
    else:
        keys = sorted(dir_a.keys() | dir_b.keys())
    out: list[Container] = []
    for key in keys:
        a = dir_a.get(key)
        b = dir_b.get(key)
        if a is None or b is None:
            # OR/XOR with an absent (all-zero) chunk copies the other side.
            out.append(a if a is not None else b)
            continue
        chunk_bits, _ = chunk_geometry(key, length)
        result = pair_op(a, b, chunk_bits)
        if result is not None:
            out.append(result)
    return roaring_bytes(out)


def roaring_not(payload: bytes, length: int) -> bytes:
    """Complement of a roaring payload for a vector of ``length`` bits.

    Chunks absent from the payload (all-zero) complement to full runs;
    present chunks complement word-wise with the final chunk's padding
    bits masked back to zero.
    """
    directory = _directory(payload, length)
    num_chunks = (length + CHUNK_BITS - 1) // CHUNK_BITS
    out: list[Container] = []
    for key in range(num_chunks):
        chunk_bits, chunk_words = chunk_geometry(key, length)
        container = directory.get(key)
        if container is None:
            result = container_from_runs(
                key,
                np.zeros(1, dtype=np.uint16),
                np.asarray([chunk_bits], dtype=np.int64),
                chunk_bits,
            )
        else:
            words = np.bitwise_not(_words_of(container, chunk_words))
            tail = chunk_bits % 64
            if tail:
                words[-1] &= (_ONE << np.uint64(tail)) - _ONE
            result = container_from_words(key, words, chunk_bits)
        if result is not None:
            out.append(result)
    return roaring_bytes(out)


def roaring_count(payload: bytes) -> int:
    """Population count of a roaring payload without decompression."""
    total = 0
    for container in containers_from_roaring(payload):
        if container.kind == ARRAY:
            total += int(container.data.size)
        elif container.kind == BITMAP:
            total += int(np.bitwise_count(container.data).astype(np.int64).sum())
        else:
            total += int(container.data[1].sum())
    return total
