"""Enhanced Word-Aligned Hybrid (EWAH) codec, 64-bit variant.

EWAH interleaves *marker words* and *dirty words*.  Each marker encodes
a run of clean (all-0 or all-1) 64-bit words followed by a count of
verbatim dirty words.  Unlike WAH it never needs to inspect dirty words
during skipping, at the cost of one marker per transition.

Marker layout (64 bits)::

    bit 0        clean fill value
    bits 1..32   clean word count (32 bits)
    bits 33..63  dirty word count (31 bits)

The codec operates directly on the bitmap's 64-bit word payload, so the
padding invariant of :class:`~repro.bitmap.BitVector` is preserved for
free.

Encode and decode run on the vectorized kernels in
:mod:`repro.compress.kernels`: word runs are segmented and markers
emitted with whole-array arithmetic; only the marker *walk* on decode
is sequential (each marker's position depends on the previous dirty
count), and that loop is per-marker, not per-word.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.compress.kernels import DIRTY, FILL_ONE, FILL_ZERO, Runs
from repro.errors import CodecError

_FULL = 0xFFFF_FFFF_FFFF_FFFF
_MAX_CLEAN = (1 << 32) - 1
_MAX_DIRTY = (1 << 31) - 1


def _marker(clean_bit: int, clean_count: int, dirty_count: int) -> int:
    return clean_bit | (clean_count << 1) | (dirty_count << 33)


def runs_from_ewah(payload: bytes) -> Runs:
    """Parse an EWAH stream into word runs.

    The walk is per *marker* (positions form a sequential chain), but
    dirty words are sliced in bulk, never copied one at a time.
    """
    if len(payload) % 8:
        raise CodecError(f"EWAH payload size {len(payload)} not word aligned")
    stream = np.frombuffer(payload, dtype=np.uint64)
    markers = stream.tolist()
    n = len(markers)
    types: list[int] = []
    lengths: list[int] = []
    dirty_starts: list[int] = []
    dirty_lens: list[int] = []
    i = 0
    while i < n:
        marker = markers[i]
        i += 1
        clean_count = (marker >> 1) & _MAX_CLEAN
        dirty_count = marker >> 33
        if clean_count:
            types.append(FILL_ONE if marker & 1 else FILL_ZERO)
            lengths.append(clean_count)
        if dirty_count:
            if i + dirty_count > n:
                raise CodecError("truncated dirty words in EWAH stream")
            types.append(DIRTY)
            lengths.append(dirty_count)
            dirty_starts.append(i)
            dirty_lens.append(dirty_count)
            i += dirty_count
    # One bulk gather of every dirty stretch beats per-marker concatenation.
    values = stream[kernels.expand_ranges(dirty_starts, dirty_lens)]
    return Runs(
        np.asarray(types, dtype=np.int8), np.asarray(lengths, dtype=np.int64), values
    )


def ewah_from_runs(runs: Runs) -> bytes:
    """Emit the canonical EWAH stream for ``runs`` via bulk scatter.

    One marker per clean run (carrying the dirty run that follows it,
    if any), plus a leading zero-clean marker when the stream starts
    dirty — the same stream the reference encoder produces.  Falls back
    to a scalar path only when a run overflows a marker counter.
    """
    if runs.num_runs == 0:
        return b""
    types, lengths = runs.types, runs.lengths
    if bool((types[1:] == types[:-1]).any()) or bool((lengths <= 0).any()):
        runs = kernels.normalize(types, lengths, runs.values, _FULL)
        types, lengths = runs.types, runs.lengths
        if runs.num_runs == 0:
            return b""
    is_clean = types != DIRTY
    if bool((lengths[is_clean] > _MAX_CLEAN).any()) or bool(
        (lengths[~is_clean] > _MAX_DIRTY).any()
    ):
        return _ewah_from_runs_chunked(runs)

    clean_idx = np.flatnonzero(is_clean)
    nxt = np.minimum(clean_idx + 1, runs.num_runs - 1)
    has_dirty = (clean_idx + 1 < runs.num_runs) & (types[nxt] == DIRTY)
    mk_bit = (types[clean_idx] == FILL_ONE).astype(np.uint64)
    mk_clean = lengths[clean_idx].astype(np.uint64)
    mk_dirty = np.where(has_dirty, lengths[nxt], 0).astype(np.int64)
    if types[0] == DIRTY:
        mk_bit = np.concatenate(([0], mk_bit)).astype(np.uint64)
        mk_clean = np.concatenate(([0], mk_clean)).astype(np.uint64)
        mk_dirty = np.concatenate(([lengths[0]], mk_dirty)).astype(np.int64)
    markers = (
        mk_bit
        | (mk_clean << np.uint64(1))
        | (mk_dirty.astype(np.uint64) << np.uint64(33))
    )
    slots = 1 + mk_dirty
    offsets = np.cumsum(slots) - slots
    out = np.empty(int(slots.sum()), dtype=np.uint64)
    out[offsets] = markers
    if runs.values.size:
        out[kernels.expand_ranges(offsets + 1, mk_dirty)] = runs.values
    return out.tobytes()


def _ewah_from_runs_chunked(runs: Runs) -> bytes:
    """Scalar emitter for runs that overflow a marker counter."""
    out: list[int] = []
    types = runs.types.tolist()
    lengths = runs.lengths.tolist()
    values = runs.values
    val_pos = 0
    i = 0
    n = len(types)
    while i < n:
        if lengths[i] == 0:
            i += 1
            continue
        clean_bit = 0
        clean_count = 0
        if types[i] != DIRTY:
            clean_bit = 1 if types[i] == FILL_ONE else 0
            clean_count = min(lengths[i], _MAX_CLEAN)
            lengths[i] -= clean_count
            if lengths[i]:
                out.append(_marker(clean_bit, clean_count, 0))
                continue
            i += 1
        dirty_count = 0
        if i < n and types[i] == DIRTY:
            dirty_count = min(lengths[i], _MAX_DIRTY)
        out.append(_marker(clean_bit, clean_count, dirty_count))
        if dirty_count:
            out.extend(values[val_pos : val_pos + dirty_count].tolist())
            val_pos += dirty_count
            lengths[i] -= dirty_count
            if lengths[i] == 0:
                i += 1
    return np.asarray(out, dtype=np.uint64).tobytes()


class EwahCodec(Codec):
    """64-bit Enhanced Word-Aligned Hybrid codec."""

    name = "ewah"

    def _encode(self, vector: BitVector) -> bytes:
        return ewah_from_runs(kernels.runs_from_elements(vector.words, _FULL))

    def _decode(self, payload: bytes, length: int) -> BitVector:
        runs = runs_from_ewah(payload)
        num_words = (length + 63) // 64
        total = runs.total
        if total > num_words:
            raise CodecError("EWAH stream overruns the declared length")
        if total != num_words:
            raise CodecError(
                f"EWAH stream produced {total} words, expected {num_words}"
            )
        words = kernels.elements_from_runs(runs, _FULL, np.uint64)
        vec = BitVector(length, words)
        vec._mask_padding()
        return vec


register_codec(EwahCodec())
