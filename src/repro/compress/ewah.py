"""Enhanced Word-Aligned Hybrid (EWAH) codec, 64-bit variant.

EWAH interleaves *marker words* and *dirty words*.  Each marker encodes
a run of clean (all-0 or all-1) 64-bit words followed by a count of
verbatim dirty words.  Unlike WAH it never needs to inspect dirty words
during skipping, at the cost of one marker per transition.

Marker layout (64 bits)::

    bit 0        clean fill value
    bits 1..32   clean word count (32 bits)
    bits 33..63  dirty word count (31 bits)

The codec operates directly on the bitmap's 64-bit word payload, so the
padding invariant of :class:`~repro.bitmap.BitVector` is preserved for
free.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress.base import Codec, register_codec
from repro.errors import CodecError

_FULL = 0xFFFF_FFFF_FFFF_FFFF
_MAX_CLEAN = (1 << 32) - 1
_MAX_DIRTY = (1 << 31) - 1


def _marker(clean_bit: int, clean_count: int, dirty_count: int) -> int:
    return clean_bit | (clean_count << 1) | (dirty_count << 33)


class EwahCodec(Codec):
    """64-bit Enhanced Word-Aligned Hybrid codec."""

    name = "ewah"

    def encode(self, vector: BitVector) -> bytes:
        words = vector.words.tolist()
        out: list[int] = []
        i = 0
        n = len(words)
        while i < n:
            # Collect a clean run.
            clean_bit = 0
            clean_count = 0
            if words[i] in (0, _FULL):
                value = words[i]
                clean_bit = 1 if value == _FULL else 0
                j = i
                while j < n and words[j] == value and clean_count < _MAX_CLEAN:
                    j += 1
                    clean_count += 1
                i = j
            # Collect the dirty tail.
            start = i
            while (
                i < n
                and words[i] not in (0, _FULL)
                and (i - start) < _MAX_DIRTY
            ):
                i += 1
            dirty = words[start:i]
            out.append(_marker(clean_bit, clean_count, len(dirty)))
            out.extend(dirty)
        return np.asarray(out, dtype=np.uint64).tobytes()

    def decode(self, payload: bytes, length: int) -> BitVector:
        if len(payload) % 8:
            raise CodecError(f"EWAH payload size {len(payload)} not word aligned")
        stream = np.frombuffer(payload, dtype=np.uint64).tolist()
        num_words = (length + 63) // 64
        words = np.zeros(num_words, dtype=np.uint64)
        pos = 0
        i = 0
        while i < len(stream):
            marker = int(stream[i])
            i += 1
            clean_bit = marker & 1
            clean_count = (marker >> 1) & _MAX_CLEAN
            dirty_count = marker >> 33
            if pos + clean_count + dirty_count > num_words:
                raise CodecError("EWAH stream overruns the declared length")
            if clean_count:
                words[pos : pos + clean_count] = _FULL if clean_bit else 0
                pos += clean_count
            if dirty_count:
                if i + dirty_count > len(stream):
                    raise CodecError("truncated dirty words in EWAH stream")
                words[pos : pos + dirty_count] = stream[i : i + dirty_count]
                i += dirty_count
                pos += dirty_count
        if pos != num_words:
            raise CodecError(
                f"EWAH stream produced {pos} words, expected {num_words}"
            )
        vec = BitVector(length, words)
        vec._mask_padding()
        return vec


register_codec(EwahCodec())
