"""Vectorized run-length kernels shared by the bitmap codecs.

Every run-length codec in this package (BBC over bytes, WAH over 31-bit
groups, EWAH over 64-bit words) manipulates the same abstract object: a
sequence of fixed-width *elements* partitioned into maximal runs that
are either a *fill* (every element all-zero or all-one) or *dirty*
(verbatim elements).  This module gives that object a columnar
representation — :class:`Runs` — and implements the hot operations on
it as whole-array numpy expressions, so encode, decode, and
compressed-domain logic never touch elements one at a time from Python:

* :func:`runs_from_elements` segments an element array into runs with a
  single ``flatnonzero`` over value-change boundaries;
* :func:`elements_from_runs` re-materializes elements with one
  ``np.repeat`` plus a bulk scatter of the dirty elements;
* :func:`combine` aligns two run sequences on the union of their run
  boundaries (``searchsorted``-based merging — no Python cursor loop)
  and applies a logical op; every dirty stretch is computed by one numpy
  op over the whole overlap;
* :func:`normalize` re-detects fills inside dirty output and merges
  adjacent runs, keeping results canonically compressed;
* :func:`complement` and :func:`runs_popcount` cover NOT and COUNT.

The codec modules layer their stream formats (markers, fill words, BBC
atoms) on top of these kernels; the element width and the all-ones
pattern are the only parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError

#: Run type tags.
FILL_ZERO = 0
FILL_ONE = 1
DIRTY = 2

_NP_OPS = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
}


@dataclass
class Runs:
    """Columnar run-length view of an element sequence.

    ``types[i]`` tags run ``i`` (``FILL_ZERO``/``FILL_ONE``/``DIRTY``),
    ``lengths[i]`` is its element count, and ``values`` concatenates the
    elements of all dirty runs in order.  Canonical instances (as
    produced by :func:`runs_from_elements` and :func:`normalize`) have
    no empty runs, no adjacent runs of equal type, and no all-zero or
    all-one element inside ``values`` — but the consumers below accept
    non-canonical instances too, so foreign payloads decode fine.
    """

    types: np.ndarray
    lengths: np.ndarray
    values: np.ndarray

    @property
    def total(self) -> int:
        """Total number of elements covered."""
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def num_runs(self) -> int:
        """Number of runs."""
        return int(self.types.shape[0])


def empty_runs(dtype) -> Runs:
    """A :class:`Runs` covering zero elements."""
    return Runs(
        np.empty(0, dtype=np.int8),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=dtype),
    )


def expand_ranges(starts, lengths) -> np.ndarray:
    """Concatenated ``arange(s, s + l)`` for each ``(s, l)`` pair.

    The gather/scatter index builder behind every kernel: it turns
    per-run (offset, count) descriptions into flat element indices
    without a Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    offsets = np.cumsum(lengths) - lengths
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, lengths)
        + np.repeat(starts, lengths)
    )


def runs_from_elements(elements: np.ndarray, full) -> Runs:
    """Segment ``elements`` into canonical runs.

    ``full`` is the all-ones element value (e.g. ``0xFF`` for bytes).
    """
    n = int(elements.shape[0])
    if n == 0:
        return empty_runs(elements.dtype)
    cls = np.full(n, DIRTY, dtype=np.int8)
    cls[elements == 0] = FILL_ZERO
    cls[elements == full] = FILL_ONE
    change = np.flatnonzero(cls[1:] != cls[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    return Runs(cls[starts], (ends - starts).astype(np.int64), elements[cls == DIRTY])


def elements_from_runs(runs: Runs, full, dtype) -> np.ndarray:
    """Materialize the element array described by ``runs``."""
    if runs.num_runs == 0:
        return np.empty(0, dtype=dtype)
    rep = np.where(runs.types == FILL_ONE, dtype(full), dtype(0)).astype(dtype)
    out = np.repeat(rep, runs.lengths)
    dirty = runs.types == DIRTY
    if dirty.any():
        ends = np.cumsum(runs.lengths)
        starts = ends - runs.lengths
        out[expand_ranges(starts[dirty], runs.lengths[dirty])] = runs.values
    return out


def normalize(types, lengths, values: np.ndarray, full) -> Runs:
    """Canonicalize piecewise run output.

    Accepts runs that may be empty, adjacent-equal, or dirty-but-clean
    (dirty pieces whose elements happen to be all-zero/all-one — the
    typical product of a logical op).  Fills are re-detected inside the
    dirty pieces with one vectorized classification over the
    concatenated ``values`` and adjacent equal-typed runs are merged, so
    outputs stay canonically compressed without a per-element loop.
    """
    types = np.asarray(types, dtype=np.int8)
    lengths = np.asarray(lengths, dtype=np.int64)
    keep = lengths > 0
    types = types[keep]
    lengths = lengths[keep]
    if types.shape[0] == 0:
        return Runs(types, lengths, values[:0])

    dirty_piece = types == DIRTY
    total_dirty = int(values.shape[0])
    if total_dirty and dirty_piece.any():
        cls = np.full(total_dirty, DIRTY, dtype=np.int8)
        cls[values == 0] = FILL_ZERO
        cls[values == full] = FILL_ONE
        piece_len = lengths[dirty_piece]
        piece_end = np.cumsum(piece_len)
        piece_start = piece_end - piece_len
        change = np.flatnonzero(cls[1:] != cls[:-1]) + 1
        sub_start = np.unique(np.concatenate((piece_start, change)))
        sub_end = np.concatenate((sub_start[1:], [total_dirty]))
        sub_len = sub_end - sub_start
        sub_type = cls[sub_start]
        piece_of_sub = np.searchsorted(piece_end, sub_start, side="right")
        sub_counts = np.bincount(piece_of_sub, minlength=piece_len.shape[0])

        counts = np.ones(types.shape[0], dtype=np.int64)
        counts[dirty_piece] = sub_counts
        offsets = np.cumsum(counts) - counts
        g_types = np.empty(int(counts.sum()), dtype=np.int8)
        g_lengths = np.empty(g_types.shape[0], dtype=np.int64)
        fill_piece = ~dirty_piece
        g_types[offsets[fill_piece]] = types[fill_piece]
        g_lengths[offsets[fill_piece]] = lengths[fill_piece]
        sub_pos = expand_ranges(offsets[dirty_piece], sub_counts)
        g_types[sub_pos] = sub_type
        g_lengths[sub_pos] = sub_len
        g_values = values[cls == DIRTY]
    else:
        g_types, g_lengths, g_values = types, lengths, values

    change = np.flatnonzero(g_types[1:] != g_types[:-1]) + 1
    starts = np.concatenate(([0], change))
    return Runs(g_types[starts], np.add.reduceat(g_lengths, starts), g_values)


def _gather_operand(
    runs: Runs, ends, seg, t, d_starts, d_lens, full, dtype
) -> np.ndarray:
    """Element values one operand contributes to the dirty intervals.

    Clean intervals broadcast their fill pattern; dirty intervals gather
    the overlapping slice of ``runs.values`` — both as bulk array ops.
    """
    fill_vals = np.where(t == FILL_ONE, dtype(full), dtype(0)).astype(dtype)
    elems = np.repeat(fill_vals, d_lens)
    is_dirty = t == DIRTY
    if is_dirty.any():
        dirty_lens = runs.lengths * (runs.types == DIRTY)
        val_off = np.cumsum(dirty_lens) - dirty_lens
        run_start = ends[seg] - runs.lengths[seg]
        src = val_off[seg[is_dirty]] + (d_starts[is_dirty] - run_start[is_dirty])
        mask = np.repeat(is_dirty, d_lens)
        elems[mask] = runs.values[expand_ranges(src, d_lens[is_dirty])]
    return elems


def combine(op: str, a: Runs, b: Runs, full, dtype) -> Runs:
    """``op`` in {"and", "or", "xor"} over two equal-length run sequences.

    Both sequences are aligned on the union of their run boundaries via
    ``searchsorted``; clean x clean intervals combine fill bits without
    touching elements, and every interval with a dirty side is computed
    by one vectorized op over the gathered overlap.  The result is
    canonical (see :func:`normalize`).
    """
    try:
        op_fn = _NP_OPS[op]
    except KeyError:
        raise CodecError(f"unknown compressed operation {op!r}") from None
    total_a, total_b = a.total, b.total
    if total_a != total_b:
        raise CodecError(
            f"compressed operands cover different element counts: "
            f"{total_a} vs {total_b}"
        )
    if total_a == 0:
        return empty_runs(dtype)

    ends_a = np.cumsum(a.lengths)
    ends_b = np.cumsum(b.lengths)
    bounds = np.union1d(ends_a, ends_b)
    istarts = np.concatenate(([0], bounds[:-1]))
    ilens = bounds - istarts
    seg_a = np.searchsorted(ends_a, istarts, side="right")
    seg_b = np.searchsorted(ends_b, istarts, side="right")
    t_a = a.types[seg_a]
    t_b = b.types[seg_b]

    both_clean = (t_a != DIRTY) & (t_b != DIRTY)
    out_types = np.full(istarts.shape[0], DIRTY, dtype=np.int8)
    out_types[both_clean] = op_fn(t_a[both_clean], t_b[both_clean])

    has_dirty = ~both_clean
    if has_dirty.any():
        d_starts = istarts[has_dirty]
        d_lens = ilens[has_dirty]
        elems_a = _gather_operand(
            a, ends_a, seg_a[has_dirty], t_a[has_dirty], d_starts, d_lens, full, dtype
        )
        elems_b = _gather_operand(
            b, ends_b, seg_b[has_dirty], t_b[has_dirty], d_starts, d_lens, full, dtype
        )
        out_values = op_fn(elems_a, elems_b)
    else:
        out_values = np.empty(0, dtype=dtype)
    return normalize(out_types, ilens, out_values, full)


def complement(runs: Runs, full, dtype, tail_mask: int | None = None) -> Runs:
    """Complement every element; optionally mask the final element.

    ``tail_mask`` clears padding bits in the last element when the
    logical length is not element-aligned (the codecs' padding
    invariant); pass ``None`` for aligned lengths.
    """
    types = runs.types.copy()
    types[runs.types == FILL_ZERO] = FILL_ONE
    types[runs.types == FILL_ONE] = FILL_ZERO
    lengths = runs.lengths.copy()
    values = np.bitwise_and(np.bitwise_not(runs.values), dtype(full))
    if tail_mask is not None and types.shape[0]:
        last_type = int(types[-1])
        if last_type == DIRTY:
            last_val = int(values[-1])
            values = values[:-1]
        else:
            last_val = int(full) if last_type == FILL_ONE else 0
        lengths[-1] -= 1
        types = np.concatenate((types, [DIRTY])).astype(np.int8)
        lengths = np.concatenate((lengths, [1])).astype(np.int64)
        values = np.concatenate(
            (values, np.asarray([last_val & int(tail_mask)], dtype=dtype))
        )
    return normalize(types, lengths, values, full)


def runs_popcount(runs: Runs, bits_per_element: int) -> int:
    """Total set bits without materializing elements."""
    total = int(runs.lengths[runs.types == FILL_ONE].sum()) * bits_per_element
    if runs.values.size:
        total += int(np.bitwise_count(runs.values).sum())
    return total


class RunSlicer:
    """Random-access element-range slices of one :class:`Runs` sequence.

    The block-streaming decoders (:mod:`repro.compress.streams`) cut a
    leaf's run sequence into many consecutive element windows; doing
    that through a per-call ``cumsum`` would make each window O(runs).
    The slicer builds the run-end and dirty-value-offset prefix sums
    once, so every :meth:`slice` is two ``searchsorted`` probes plus
    work proportional to the runs actually overlapped.
    """

    def __init__(self, runs: Runs):
        self.runs = runs
        self._ends = np.cumsum(runs.lengths)
        dirty_lens = runs.lengths * (runs.types == DIRTY)
        self._val_off = np.cumsum(dirty_lens) - dirty_lens
        #: Total elements covered (cached; ``Runs.total`` re-sums).
        self.total = int(self._ends[-1]) if runs.num_runs else 0

    def slice(self, start: int, stop: int) -> Runs:
        """Elements ``[start, stop)`` as a (possibly non-canonical) Runs.

        The window is clamped to ``[0, total)``; a caller asking past
        the end (a stream that trimmed trailing zero elements) gets a
        shorter sequence back and supplies its own padding.
        """
        start = max(int(start), 0)
        stop = min(int(stop), self.total)
        if stop <= start:
            return empty_runs(self.runs.values.dtype)
        runs, ends = self.runs, self._ends
        first = int(np.searchsorted(ends, start, side="right"))
        last = int(np.searchsorted(ends, stop, side="left"))
        sel = slice(first, last + 1)
        types = runs.types[sel]
        r_ends = ends[sel]
        r_starts = r_ends - runs.lengths[sel]
        lo = np.maximum(r_starts, start)
        out_lens = np.minimum(r_ends, stop) - lo
        is_dirty = types == DIRTY
        if is_dirty.any():
            src = self._val_off[sel][is_dirty] + (lo[is_dirty] - r_starts[is_dirty])
            values = runs.values[expand_ranges(src, out_lens[is_dirty])]
        else:
            values = runs.values[:0]
        return Runs(types.copy(), out_lens.astype(np.int64), values)


def slice_runs(runs: Runs, start: int, stop: int) -> Runs:
    """One-shot element-range slice (see :class:`RunSlicer`)."""
    return RunSlicer(runs).slice(start, stop)
