"""Identity codec: uncompressed bitmap storage."""

from __future__ import annotations

from repro.bitmap import BitVector
from repro.compress.base import Codec, register_codec


class RawCodec(Codec):
    """Stores the bitmap's word payload verbatim.

    The encoded size is the logical size rounded up to whole 64-bit
    words, which matches how the uncompressed indexes in the paper are
    laid out on disk.
    """

    name = "raw"

    def encode(self, vector: BitVector) -> bytes:
        return vector.to_bytes()

    def decode(self, payload: bytes, length: int) -> BitVector:
        return BitVector.from_bytes(length, payload)

    def encoded_size(self, vector: BitVector) -> int:
        return vector.num_words * 8


register_codec(RawCodec())
