"""Identity codec: uncompressed bitmap storage.

Besides the codec itself this module provides :func:`raw_logical`,
:func:`raw_not` and :func:`raw_count` — "compressed-domain" operations
on raw payloads, which are simply vectorized word operations on the
buffers.  They exist so the differential test suite has an independent
implementation with the same payload-level signature as the real
compressed-domain codecs (BBC/WAH/EWAH/roaring) to pit them against.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress import kernels
from repro.compress.base import Codec, register_codec
from repro.errors import CodecError


def _payload_words(payload: bytes, length: int) -> np.ndarray:
    expected = (length + 63) // 64 * 8
    if len(payload) != expected:
        raise CodecError(
            f"raw payload has {len(payload)} bytes; length {length} "
            f"needs {expected}"
        )
    return np.frombuffer(payload, dtype=np.uint64)


def raw_logical(op: str, payload_a: bytes, payload_b: bytes, length: int) -> bytes:
    """``op`` in {"and", "or", "xor"} over two raw payloads of ``length`` bits."""
    try:
        op_fn = kernels._NP_OPS[op]
    except KeyError:
        raise CodecError(f"unknown compressed operation {op!r}") from None
    words_a = _payload_words(payload_a, length)
    words_b = _payload_words(payload_b, length)
    return op_fn(words_a, words_b).tobytes()


def raw_not(payload: bytes, length: int) -> bytes:
    """Complement of a raw payload, preserving the padding invariant."""
    words = np.bitwise_not(_payload_words(payload, length))
    tail = length % 64
    if tail and words.shape[0]:
        words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    return words.tobytes()


def raw_count(payload: bytes) -> int:
    """Population count of a raw payload."""
    words = np.frombuffer(payload, dtype=np.uint64)
    return int(np.bitwise_count(words).astype(np.int64).sum())


class RawCodec(Codec):
    """Stores the bitmap's word payload verbatim.

    The encoded size is the logical size rounded up to whole 64-bit
    words, which matches how the uncompressed indexes in the paper are
    laid out on disk.
    """

    name = "raw"

    def _encode(self, vector: BitVector) -> bytes:
        return vector.to_bytes()

    def _decode(self, payload: bytes, length: int) -> BitVector:
        return BitVector.from_bytes(length, payload)

    def _decode_view(self, payload, length: int) -> BitVector | None:
        """Zero-copy decode: the words alias the payload buffer.

        Falls back (returns None) when the payload is malformed or its
        padding bits are dirty — those cases need the copying decode's
        error reporting and masking.
        """
        expected = (length + 63) // 64 * 8
        if len(payload) != expected:
            return None
        words = np.frombuffer(payload, dtype=np.uint64)
        tail = length % 64
        if tail and words.shape[0] and int(words[-1]) >> tail:
            return None
        return BitVector(length, words)

    def encoded_size(self, vector: BitVector) -> int:
        return vector.num_words * 8


register_codec(RawCodec())
