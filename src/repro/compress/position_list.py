"""Position-list codec: the sorted set-bit positions, verbatim.

The cheapest possible representation of a *very* sparse bitmap is the
sorted list of its set-bit positions — the same observation behind
Roaring's array containers (2 bytes per bit inside a 2^16-bit chunk),
lifted to the whole vector at 4 bytes per bit so no per-chunk directory
is needed.  For bitmaps with fewer set bits than roaring has non-empty
chunks, the directory overhead dominates and the flat list wins; the
``auto`` meta-codec (:mod:`repro.compress.adaptive`) exploits exactly
that corner.

Payload layout: the set-bit positions as little-endian ``uint32``,
strictly ascending, no header (the cardinality is ``len(payload) // 4``).
Vectors longer than 2^32 - 1 bits are rejected at encode time.

Compressed-domain AND/OR/XOR are sorted-set operations
(``intersect1d``/``union1d``/``setxor1d``); NOT materializes the
complement mask (the complement of a sparse set is dense — ``auto``
steers bitmaps with cheap complements elsewhere).  The
:class:`PositionListStream` block kernel is a ``searchsorted`` window
plus a bit scatter, the same shape as roaring's array-container path.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector
from repro.compress.base import Codec, register_codec
from repro.compress.compressed_ops import register_compressed_ops
from repro.compress.streams import BlockStream, register_stream
from repro.errors import CodecError

#: Longest encodable vector: positions must fit in uint32.
MAX_LENGTH = (1 << 32) - 1

_ONE = np.uint64(1)


def positions_from_payload(payload, length: int) -> np.ndarray:
    """Parse and validate a position-list payload into int64 positions."""
    size = len(payload)
    if size % 4:
        raise CodecError(
            f"position-list payload of {size} bytes is not a whole number "
            f"of uint32 positions"
        )
    positions = np.frombuffer(payload, dtype="<u4").astype(np.int64)
    if positions.size:
        if not bool((positions[1:] > positions[:-1]).all()):
            raise CodecError("position-list positions not strictly ascending")
        if int(positions[-1]) >= length:
            raise CodecError(
                f"position-list position {int(positions[-1])} overruns the "
                f"declared length {length}"
            )
    return positions


def _positions_to_payload(positions: np.ndarray) -> bytes:
    return positions.astype("<u4").tobytes()


def position_list_logical(op: str, payload_a, payload_b, length: int) -> bytes:
    """``op`` in {"and", "or", "xor"} over two position-list payloads."""
    pos_a = positions_from_payload(payload_a, length)
    pos_b = positions_from_payload(payload_b, length)
    if op == "and":
        out = np.intersect1d(pos_a, pos_b, assume_unique=True)
    elif op == "or":
        out = np.union1d(pos_a, pos_b)
    elif op == "xor":
        out = np.setxor1d(pos_a, pos_b, assume_unique=True)
    else:
        raise CodecError(f"unknown compressed operation {op!r}")
    return _positions_to_payload(out)


def position_list_not(payload, length: int) -> bytes:
    """Complement of a position-list payload over ``[0, length)``."""
    positions = positions_from_payload(payload, length)
    mask = np.ones(length, dtype=bool)
    mask[positions] = False
    return _positions_to_payload(np.flatnonzero(mask))


def position_list_count(payload) -> int:
    """Set-bit count: the number of stored positions."""
    size = len(payload)
    if size % 4:
        raise CodecError(
            f"position-list payload of {size} bytes is not a whole number "
            f"of uint32 positions"
        )
    return size // 4


class PositionListStream(BlockStream):
    """``searchsorted`` window + bit scatter over the position array."""

    def __init__(self, payload, length: int):
        super().__init__(length)
        self._positions = positions_from_payload(payload, length)

    def block(self, start: int, stop: int) -> np.ndarray:
        out = np.zeros(stop - start, dtype=np.uint64)
        lo = int(np.searchsorted(self._positions, start * 64, side="left"))
        hi = int(np.searchsorted(self._positions, stop * 64, side="left"))
        rel = self._positions[lo:hi] - start * 64
        if rel.size:
            np.bitwise_or.at(out, rel >> 6, _ONE << (rel & 63).astype(np.uint64))
        return out


class PositionListCodec(Codec):
    """Sorted set-bit positions as little-endian uint32."""

    name = "position_list"

    def _encode(self, vector: BitVector) -> bytes:
        if len(vector) > MAX_LENGTH:
            raise CodecError(
                f"position-list codec holds at most {MAX_LENGTH} bits, "
                f"got {len(vector)}"
            )
        return _positions_to_payload(vector.to_indices())

    def _decode(self, payload, length: int) -> BitVector:
        positions = positions_from_payload(payload, length)
        vector = BitVector(length)
        if positions.size:
            np.bitwise_or.at(
                vector.words,
                positions >> 6,
                _ONE << (positions & 63).astype(np.uint64),
            )
        return vector

    def encoded_size(self, vector: BitVector) -> int:
        return 4 * vector.count()


register_codec(PositionListCodec())
register_compressed_ops(
    "position_list",
    position_list_logical,
    position_list_not,
    position_list_count,
)
register_stream("position_list", PositionListStream)
