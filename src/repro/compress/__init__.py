"""Bitmap compression codecs.

The paper's experiments store indexes both uncompressed and compressed
with "a byte-aligned run-length encoding scheme proposed by Antoshenkov"
(the BBC codec used by Oracle 8).  This subpackage provides:

* :mod:`repro.compress.raw` — identity codec (uncompressed storage);
* :mod:`repro.compress.bbc` — a byte-aligned run-length codec following
  the BBC atom structure;
* :mod:`repro.compress.wah` — 32-bit Word-Aligned Hybrid, the codec that
  later superseded BBC in FastBit (included as a cross-check/ablation);
* :mod:`repro.compress.ewah` — 64-bit Enhanced WAH (ablation);
* :mod:`repro.compress.roaring` — the Roaring container codec
  (2^16-bit chunks with array/bitmap/run containers), an extension
  beyond the paper's run-length family;
* :mod:`repro.compress.position_list` / :mod:`repro.compress.range_list`
  — roaring's array and run containers lifted to whole bitmaps (sorted
  positions, sorted maximal runs);
* :mod:`repro.compress.adaptive` — the ``auto`` meta-codec, which
  measures each bitmap's shape at encode time and tags the payload with
  the cheapest concrete codec (see ``docs/adaptive.md``).

Codecs are looked up by name via :func:`get_codec`.  Every codec except
``raw`` supports compressed-domain AND/OR/XOR/NOT and popcount
(``raw`` gets the same payload-level entry points, which are simply the
plain word operations); :class:`CompressedBitmap` wraps any codec in
:data:`COMPRESSED_DOMAIN_CODECS` behind the ``BitVector`` operator
protocol.
"""

from repro.compress.base import Codec, available_codecs, get_codec, register_codec
from repro.compress.bbc import BbcCodec
from repro.compress.bbc_ops import bbc_count, bbc_logical, bbc_not
from repro.compress.compressed_ops import (
    COMPRESSED_DOMAIN_CODECS,
    COUNT_OPS,
    LOGICAL_OPS,
    NOT_OPS,
    CompressedBitmap,
    ewah_count,
    ewah_logical,
    ewah_not,
    register_compressed_ops,
)
from repro.compress.ewah import EwahCodec
from repro.compress.raw import RawCodec, raw_count, raw_logical, raw_not
from repro.compress.roaring import RoaringCodec
from repro.compress.roaring_ops import roaring_count, roaring_logical, roaring_not
from repro.compress.stats import CompressionStats, measure_all_codecs, measure_codec
from repro.compress.streams import (
    BlockStream,
    VectorStream,
    decode_blockwise,
    open_stream,
    register_stream,
)
from repro.compress.wah import WahCodec
from repro.compress.wah_ops import wah_count, wah_logical, wah_not

# Self-registering codecs: importing these modules adds them to the
# codec registry, the compressed-domain op tables and the stream table,
# so they must come after the registries they extend.
from repro.compress.position_list import (  # noqa: E402
    PositionListCodec,
    position_list_count,
    position_list_logical,
    position_list_not,
)
from repro.compress.range_list import (  # noqa: E402
    RangeListCodec,
    range_list_count,
    range_list_logical,
    range_list_not,
)
from repro.compress.adaptive import (  # noqa: E402
    CODEC_IDS,
    AutoCodec,
    ShapeStats,
    auto_count,
    auto_logical,
    auto_not,
    measure,
    payload_codec_name,
    select_codec,
    split_payload,
)

__all__ = [
    "Codec",
    "RawCodec",
    "BbcCodec",
    "WahCodec",
    "EwahCodec",
    "RoaringCodec",
    "get_codec",
    "register_codec",
    "available_codecs",
    "CompressionStats",
    "measure_codec",
    "measure_all_codecs",
    "CompressedBitmap",
    "COMPRESSED_DOMAIN_CODECS",
    "LOGICAL_OPS",
    "NOT_OPS",
    "COUNT_OPS",
    "ewah_logical",
    "ewah_not",
    "ewah_count",
    "wah_logical",
    "wah_not",
    "wah_count",
    "bbc_logical",
    "bbc_not",
    "bbc_count",
    "roaring_logical",
    "roaring_not",
    "roaring_count",
    "raw_logical",
    "raw_not",
    "raw_count",
    "PositionListCodec",
    "position_list_logical",
    "position_list_not",
    "position_list_count",
    "RangeListCodec",
    "range_list_logical",
    "range_list_not",
    "range_list_count",
    "AutoCodec",
    "ShapeStats",
    "CODEC_IDS",
    "measure",
    "select_codec",
    "split_payload",
    "payload_codec_name",
    "auto_logical",
    "auto_not",
    "auto_count",
    "register_compressed_ops",
    "register_stream",
    "BlockStream",
    "VectorStream",
    "open_stream",
    "decode_blockwise",
]
