"""Bitmap compression codecs.

The paper's experiments store indexes both uncompressed and compressed
with "a byte-aligned run-length encoding scheme proposed by Antoshenkov"
(the BBC codec used by Oracle 8).  This subpackage provides:

* :mod:`repro.compress.raw` — identity codec (uncompressed storage);
* :mod:`repro.compress.bbc` — a byte-aligned run-length codec following
  the BBC atom structure;
* :mod:`repro.compress.wah` — 32-bit Word-Aligned Hybrid, the codec that
  later superseded BBC in FastBit (included as a cross-check/ablation);
* :mod:`repro.compress.ewah` — 64-bit Enhanced WAH (ablation);
* :mod:`repro.compress.roaring` — the Roaring container codec
  (2^16-bit chunks with array/bitmap/run containers), an extension
  beyond the paper's run-length family.

Codecs are looked up by name via :func:`get_codec`.  Every codec except
``raw`` supports compressed-domain AND/OR/XOR/NOT and popcount
(``raw`` gets the same payload-level entry points, which are simply the
plain word operations); :class:`CompressedBitmap` wraps any codec in
:data:`COMPRESSED_DOMAIN_CODECS` behind the ``BitVector`` operator
protocol.
"""

from repro.compress.base import Codec, available_codecs, get_codec, register_codec
from repro.compress.bbc import BbcCodec
from repro.compress.bbc_ops import bbc_count, bbc_logical, bbc_not
from repro.compress.compressed_ops import (
    COMPRESSED_DOMAIN_CODECS,
    COUNT_OPS,
    LOGICAL_OPS,
    NOT_OPS,
    CompressedBitmap,
    ewah_count,
    ewah_logical,
    ewah_not,
)
from repro.compress.ewah import EwahCodec
from repro.compress.raw import RawCodec, raw_count, raw_logical, raw_not
from repro.compress.roaring import RoaringCodec
from repro.compress.roaring_ops import roaring_count, roaring_logical, roaring_not
from repro.compress.stats import CompressionStats, measure_all_codecs, measure_codec
from repro.compress.streams import BlockStream, VectorStream, decode_blockwise, open_stream
from repro.compress.wah import WahCodec
from repro.compress.wah_ops import wah_count, wah_logical, wah_not

__all__ = [
    "Codec",
    "RawCodec",
    "BbcCodec",
    "WahCodec",
    "EwahCodec",
    "RoaringCodec",
    "get_codec",
    "register_codec",
    "available_codecs",
    "CompressionStats",
    "measure_codec",
    "measure_all_codecs",
    "CompressedBitmap",
    "COMPRESSED_DOMAIN_CODECS",
    "LOGICAL_OPS",
    "NOT_OPS",
    "COUNT_OPS",
    "ewah_logical",
    "ewah_not",
    "ewah_count",
    "wah_logical",
    "wah_not",
    "wah_count",
    "bbc_logical",
    "bbc_not",
    "bbc_count",
    "roaring_logical",
    "roaring_not",
    "roaring_count",
    "raw_logical",
    "raw_not",
    "raw_count",
    "BlockStream",
    "VectorStream",
    "open_stream",
    "decode_blockwise",
]
