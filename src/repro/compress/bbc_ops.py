"""Logical operations directly on BBC-compressed bitmaps.

The paper's codec never had a compressed-domain story — queries paid a
full decompression per bitmap.  With the run kernels in
:mod:`repro.compress.kernels` the BBC atom stream gets the same
treatment as WAH/EWAH: AND/OR/XOR/NOT over payloads without
materializing uncompressed bit vectors.

One BBC-specific wrinkle: the encoder trims trailing zero *bytes*
(the decoder regenerates them from the declared length), so two
payloads for equal-length bitmaps may cover different byte counts.
All entry points therefore take the logical bit length and re-pad the
run view with a zero fill before combining.
"""

from __future__ import annotations

import numpy as np

from repro.compress import kernels
from repro.compress.bbc import _FULL_BYTE, bbc_from_runs, runs_from_bbc
from repro.compress.kernels import FILL_ZERO, Runs
from repro.errors import CodecError


def _padded_runs(payload: bytes, logical_bytes: int) -> Runs:
    """Run view of ``payload`` re-padded to ``logical_bytes``."""
    runs = runs_from_bbc(payload)
    produced = runs.total
    if produced > logical_bytes:
        raise CodecError(
            f"BBC stream decodes to {produced} bytes but the declared "
            f"length allows only {logical_bytes}"
        )
    if produced < logical_bytes:
        runs = Runs(
            np.concatenate((runs.types, [np.int8(FILL_ZERO)])).astype(np.int8),
            np.concatenate(
                (runs.lengths, [np.int64(logical_bytes - produced)])
            ).astype(np.int64),
            runs.values,
        )
    return runs


def bbc_logical(op: str, payload_a: bytes, payload_b: bytes, length: int) -> bytes:
    """``op`` in {"and", "or", "xor"} over two BBC payloads of ``length`` bits."""
    if op not in kernels._NP_OPS:
        raise CodecError(f"unknown compressed operation {op!r}")
    logical_bytes = (length + 7) // 8
    runs_a = _padded_runs(payload_a, logical_bytes)
    runs_b = _padded_runs(payload_b, logical_bytes)
    result = kernels.combine(op, runs_a, runs_b, _FULL_BYTE, np.uint8)
    return bbc_from_runs(result)


def bbc_not(payload: bytes, length: int) -> bytes:
    """Complement of a BBC payload for a vector of ``length`` bits.

    The final byte's padding bits must stay zero, so the last byte is
    masked explicitly when the length is not byte-aligned.
    """
    logical_bytes = (length + 7) // 8
    tail_bits = length % 8
    tail_mask = (1 << tail_bits) - 1 if tail_bits else None
    runs = _padded_runs(payload, logical_bytes)
    result = kernels.complement(runs, _FULL_BYTE, np.uint8, tail_mask)
    return bbc_from_runs(result)


def bbc_count(payload: bytes) -> int:
    """Population count of a BBC payload without decompression."""
    return kernels.runs_popcount(runs_from_bbc(payload), 8)
