"""Compressed-domain query evaluation (extension).

The paper's cost model charges decompression CPU for every compressed
bitmap a query reads — that charge is why compressed indexes lose to
uncompressed ones at low skew (Figure 9).  Compressed-domain codecs
admit a way out: logical operations can run *directly on the compressed
payloads* (:mod:`repro.compress.compressed_ops`), touching only the
dirty words (or, for roaring, only the matching containers), so the
decompression charge disappears and the CPU charge shrinks with the
compression ratio.

:class:`CompressedQueryEngine` is the engine-level realization for any
index stored under a codec in
:data:`~repro.compress.COMPRESSED_DOMAIN_CODECS` (BBC, WAH, EWAH,
roaring): stored payloads are fetched (and buffered) in compressed
form, the whole expression DAG is evaluated over
:class:`~repro.compress.CompressedBitmap` values, and only the final
answer is decoded.  The ``bench_compressed_ops`` benchmark quantifies
the saving against the standard decompress-then-operate engine.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable

from repro import obs as _obs
from repro.compress import COMPRESSED_DOMAIN_CODECS, CompressedBitmap
from repro.compress.multiway import multiway_logical, multiway_threshold
from repro.errors import QueryError
from repro.expr import EvalStats, Expr
from repro.expr.nodes import And, Const, Leaf, Not, Or, Xor
from repro.expr.threshold import Threshold
from repro.index.evaluation import EvaluationResult, query_class_of
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.storage import BufferStats, CostClock
from repro.storage.pages import pages_for


class _PayloadPool:
    """LRU cache of compressed payloads, sized in *compressed* pages.

    Unlike :class:`~repro.storage.BufferPool`, residents stay encoded —
    that is the whole point: a compressed-domain engine's buffer holds
    several times more bitmaps in the same memory.
    """

    def __init__(self, store, capacity_pages: int, clock: CostClock | None):
        self._store = store
        self._codec_name = store.codec.name
        self._capacity = capacity_pages
        self._clock = clock
        self._resident: OrderedDict[
            Hashable, tuple[CompressedBitmap, int, int]
        ] = OrderedDict()
        self._used = 0
        self.stats = BufferStats()

    def fetch(self, key: Hashable) -> CompressedBitmap:
        entry = self._resident.get(key)
        o = _obs.active()
        if entry is not None:
            bitmap, pages, version = entry
            if version != self._store.version(key):
                # The stored payload was replaced (an append rewrites
                # every bitmap); drop the entry and read through below.
                del self._resident[key]
                self._used -= pages
            else:
                self._resident.move_to_end(key)
                self.stats.hits += 1
                if o is not None:
                    o.count("buffer.hits", 1, pool="compressed")
                return bitmap
        self.stats.misses += 1
        if o is not None:
            o.count("buffer.misses", 1, pool="compressed")
        payload, length = self._store.get_payload(key)
        info = self._store.info(key)
        if self._clock is not None:
            self._clock.charge_read(info.pages)
            # No decompression charge: the payload is used as-is.
        bitmap = CompressedBitmap(payload, length, self._codec_name)
        pages = pages_for(len(payload), self._store.page_size)
        while self._resident and self._used + pages > self._capacity:
            _, (_, old_pages, _) = self._resident.popitem(last=False)
            self._used -= old_pages
            self.stats.evictions += 1
            if o is not None:
                o.count("buffer.evictions", 1, pool="compressed")
        self._resident[key] = (bitmap, pages, self._store.version(key))
        self._used += pages
        if o is not None:
            o.gauge_set("buffer.used_pages", self._used, pool="compressed")
        return bitmap

    def clear(self) -> None:
        self._resident.clear()
        self._used = 0


class CompressedQueryEngine:
    """Evaluates queries over a compressed index without decompression.

    Mirrors :class:`~repro.index.evaluation.QueryEngine` (component-wise
    strategy) but keeps every operand compressed; CPU is charged per
    compressed word actually touched by an operation rather than per
    uncompressed word.  Works for any codec with compressed-domain
    operations (BBC, WAH, EWAH, roaring).
    """

    def __init__(self, index, buffer_pages: int | None = None,
                 clock: CostClock | None = None,
                 blockwise_decode: bool = True,
                 block_words: int = 2048):
        codec_name = index.store.codec.name
        if codec_name not in COMPRESSED_DOMAIN_CODECS:
            raise QueryError(
                "compressed-domain evaluation requires a codec with "
                f"compressed-domain operations "
                f"({sorted(COMPRESSED_DOMAIN_CODECS)}), index uses "
                f"{codec_name!r}"
            )
        self._codec_name = codec_name
        self.index = index
        self.blockwise_decode = blockwise_decode
        self.block_words = int(block_words)
        self.clock = clock if clock is not None else CostClock()
        if buffer_pages is None:
            buffer_pages = max(1, index.size_pages() + 2)
        self.pool = _PayloadPool(index.store, buffer_pages, self.clock)

    @property
    def buffer_stats(self) -> BufferStats:
        """Hit/miss/eviction counters of the payload pool."""
        return self.pool.stats

    def execute(
        self, query: IntervalQuery | MembershipQuery | ThresholdQuery
    ) -> EvaluationResult:
        """Rewrite and evaluate ``query`` in the compressed domain.

        Traced like the decoded engine (``engine="compressed"`` spans
        and the same per-(scheme, class) latency histogram).
        """
        o = _obs.active()
        if o is None:
            return self._do_execute(query)
        klass = query_class_of(query)
        scheme = self.index.scheme.name
        with o.span(
            "query",
            scheme=scheme,
            strategy="compressed-domain",
            klass=klass,
            engine="compressed",
            codec=self._codec_name,
        ):
            result = self._do_execute(query)
        o.observe("query.simulated_ms", result.simulated_ms,
                  scheme=scheme, klass=klass)
        o.count("query.executed", 1, scheme=scheme, klass=klass)
        return result

    def _do_execute(
        self, query: IntervalQuery | MembershipQuery | ThresholdQuery
    ) -> EvaluationResult:
        if isinstance(query, IntervalQuery):
            constituents = [self.index.rewriter.rewrite_interval(query)]
        elif isinstance(query, MembershipQuery):
            constituents = self.index.rewriter.rewrite_membership(query)
        elif isinstance(query, ThresholdQuery):
            constituents = [self.index.rewriter.rewrite_threshold(query)]
        else:
            raise QueryError(f"unsupported query type {type(query).__name__}")

        start_ms = self.clock.total_ms
        stats = EvalStats()
        cache: dict[Hashable, CompressedBitmap] = {}
        memo: dict[Expr, CompressedBitmap] = {}
        results = [
            self._eval(expr, stats, cache, memo) for expr in constituents
        ]
        answer = self._combine_constituents(results, stats)
        return EvaluationResult(
            bitmap=self._decode_answer(answer),
            stats=stats,
            simulated_ms=self.clock.total_ms - start_ms,
            strategy="compressed-domain",
        )

    def evaluate_shared(
        self,
        constituents: list[Expr],
        cache: dict[Hashable, CompressedBitmap],
        stats: EvalStats,
    ):
        """Evaluate one query's constituents against a shared leaf cache.

        The serving layer's shared-scan batches prefetch the union of a
        batch's leaf bitmaps once and pass the same ``cache`` to every
        query in the batch, so each stored bitmap crosses the buffer
        pool at most once per batch.  Returns the decoded answer; the
        final decode is charged as decompression, exactly as in
        :meth:`execute`.
        """
        memo: dict[Expr, CompressedBitmap] = {}
        results = [
            self._eval(expr, stats, cache, memo) for expr in constituents
        ]
        answer = self._combine_constituents(results, stats)
        return self._decode_answer(answer)

    # ------------------------------------------------------------------

    def _combine_constituents(
        self, results: list[CompressedBitmap], stats: EvalStats
    ) -> CompressedBitmap:
        """OR the constituent answers (multi-way when three or more)."""
        if len(results) >= 3:
            return self._multiway_op("or", results, stats)
        answer = results[0]
        for other in results[1:]:
            answer = self._charged_op(answer, other, "or", stats)
        return answer

    def _decode_answer(self, answer: CompressedBitmap):
        """Decode the final answer once, charged as decompression.

        The blockwise path streams the payload through the codec's
        block kernel (decode scratch stays ~16 KiB instead of scaling
        with the run count); result, clock charge and ``codec.decode.*``
        counters are identical to the whole-vector decode.  On a
        reordered index the decoded answer is translated back to
        original row order here — the result boundary — so every
        compressed-domain operation above ran in sorted space.
        """
        self.clock.charge_decompress(answer.compressed_size())
        if self.blockwise_decode:
            decoded = answer.decode_blockwise(self.block_words)
        else:
            decoded = answer.decode()
        return self.index.restore_row_order(decoded)

    def _charged_op(
        self,
        left: CompressedBitmap,
        right: CompressedBitmap,
        op: str,
        stats: EvalStats,
    ) -> CompressedBitmap:
        if op == "and":
            result = left & right
        elif op == "or":
            result = left | right
        else:
            result = left ^ right
        stats.operations += 1
        touched = (left.compressed_size() + right.compressed_size()) // 8
        self.clock.charge_word_ops(1, max(1, touched))
        return result

    def _eval(
        self,
        expr: Expr,
        stats: EvalStats,
        cache: dict[Hashable, CompressedBitmap],
        memo: dict[Expr, CompressedBitmap],
    ) -> CompressedBitmap:
        if expr in memo:
            return memo[expr]
        length = self.index.num_records
        if isinstance(expr, Leaf):
            if expr.key in cache:
                result = cache[expr.key]
            else:
                result = self.pool.fetch(expr.key)
                cache[expr.key] = result
                stats.scans += 1
                stats.fetched_keys.append(expr.key)
        elif isinstance(expr, Const):
            from repro.bitmap import BitVector

            base = BitVector.ones(length) if expr.value else BitVector.zeros(length)
            result = CompressedBitmap.from_vector(base, self._codec_name)
        elif isinstance(expr, Not):
            child = self._eval(expr.child, stats, cache, memo)
            result = ~child
            stats.operations += 1
            self.clock.charge_word_ops(
                1, max(1, child.compressed_size() // 8)
            )
        elif isinstance(expr, (And, Or, Xor)):
            op = {And: "and", Or: "or", Xor: "xor"}[type(expr)]
            operands = [
                self._eval(child, stats, cache, memo)
                for child in expr.children()
            ]
            if len(operands) >= 3:
                result = self._multiway_op(op, operands, stats)
            else:
                result = operands[0]
                for other in operands[1:]:
                    result = self._charged_op(result, other, op, stats)
        elif isinstance(expr, Threshold):
            operands = [
                self._eval(child, stats, cache, memo)
                for child in expr.children()
            ]
            result = self._threshold_op(expr.k, operands, stats)
        else:
            raise TypeError(f"unknown expression node {type(expr).__name__}")
        memo[expr] = result
        return result

    def _multiway_op(
        self,
        op: str,
        operands: list[CompressedBitmap],
        stats: EvalStats,
    ) -> CompressedBitmap:
        """N-way logical op in one pass over the compressed payloads.

        Charged by the compressed bytes actually streamed — the sum of
        the input payload sizes — where the pairwise fold would also
        re-charge every intermediate it materializes; for N >= 3 the
        multi-way pass is therefore strictly cheaper in words operated.
        ``stats.operations`` still counts the logical ``n - 1`` ops of
        the n-ary node, so expression-level accounting is unchanged.
        """
        length = self.index.num_records
        vector = multiway_logical(
            op,
            self._codec_name,
            [operand.payload for operand in operands],
            length,
            self.block_words,
        )
        stats.operations += len(operands) - 1
        touched = sum(o.compressed_size() for o in operands) // 8
        self.clock.charge_word_ops(1, max(1, touched))
        return CompressedBitmap.from_vector(vector, self._codec_name)

    def _threshold_op(
        self,
        k: int,
        operands: list[CompressedBitmap],
        stats: EvalStats,
    ) -> CompressedBitmap:
        """k-of-N counting pass over the compressed payloads.

        One lockstep stream of the N payloads through the bit-sliced
        counter; charged like :meth:`_multiway_op` by the compressed
        bytes streamed, with ``stats.operations`` counting the node's
        ``n`` counter additions (the evaluator's convention).
        """
        length = self.index.num_records
        vector = multiway_threshold(
            k,
            self._codec_name,
            [operand.payload for operand in operands],
            length,
            self.block_words,
        )
        stats.operations += len(operands)
        touched = sum(o.compressed_size() for o in operands) // 8
        self.clock.charge_word_ops(1, max(1, touched))
        return CompressedBitmap.from_vector(vector, self._codec_name)
