"""Cost-based expression selection (extension).

The paper's evaluation equations choose between alternative forms by
*bitmap count* — e.g. Equation (1) ORs whichever side of an interval
has fewer equality bitmaps.  With compressed storage, counts are a poor
proxy: ten near-empty bitmaps may be cheaper to read than three dense
ones.  :class:`CostBasedRewriter` re-decides those choices against the
*actual stored sizes* in a bitmap store, the way a cost-based optimizer
would:

* for each digit-level interval predicate, candidate expressions are
  generated (for equality encoding: the direct OR and the complemented
  OR, regardless of which side is narrower);
* each candidate is priced as the total encoded bytes of its distinct
  leaves (the I/O the query would read), with the count as tiebreak;
* the cheapest candidate wins.

For count-symmetric schemes (R, I, ...) there is a single candidate and
the rewriter behaves identically to the base class.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.encoding.base import EncodingScheme
from repro.encoding.equality import EqualityEncoding
from repro.expr import Expr, leaf, not_of, one, or_of, simplify
from repro.index.rewrite import QueryRewriter, _relabel_component
from repro.storage.store import BitmapStore


def equality_interval_candidates(
    cardinality: int, low: int, high: int
) -> list[Expr]:
    """Both Equation (1) forms for an equality-encoded interval."""
    if cardinality <= 2 or (low == 0 and high == cardinality - 1):
        return []
    inside = or_of(leaf(v) for v in range(low, high + 1))
    outside_leaves = [leaf(v) for v in range(0, low)] + [
        leaf(v) for v in range(high + 1, cardinality)
    ]
    candidates = [inside]
    if outside_leaves:
        candidates.append(not_of(or_of(outside_leaves)))
    return candidates


class CostBasedRewriter(QueryRewriter):
    """A :class:`~repro.index.rewrite.QueryRewriter` that prices
    candidate expressions against a store's actual bitmap sizes."""

    def __init__(
        self,
        cardinality: int,
        bases: Sequence[int],
        scheme: EncodingScheme,
        store: BitmapStore,
    ):
        super().__init__(cardinality, bases, scheme)
        self._store = store
        self._size_cache: dict[Hashable, int] = {}

    def _leaf_bytes(self, key: Hashable) -> int:
        size = self._size_cache.get(key)
        if size is None:
            size = self._store.info(key).encoded_bytes if key in self._store else 0
            self._size_cache[key] = size
        return size

    def expression_cost(self, expr: Expr) -> tuple[int, int]:
        """(total encoded bytes, leaf count) of an expression's reads."""
        keys = expr.leaf_keys()
        return (sum(self._leaf_bytes(key) for key in keys), len(keys))

    def _digit_interval(self, component: int, low: int, high: int) -> Expr:
        base = self.bases[component]
        default = super()._digit_interval(component, low, high)
        if not isinstance(self.scheme, EqualityEncoding):
            return default
        candidates = [
            simplify(_relabel_component(candidate, component))
            for candidate in equality_interval_candidates(base, low, high)
        ]
        if not candidates:
            return default
        return min([default, *candidates], key=self.expression_cost)

    def _digit_le(self, component: int, digit: int) -> Expr:
        # Route digit prefixes through the interval pricing too.
        if digit >= self.bases[component] - 1:
            return one()
        return self._digit_interval(component, 0, digit)
