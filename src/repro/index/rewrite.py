"""Query rewrite for multi-component indexes (Sections 6.1 and 6.2).

The rewrite pipeline takes a membership or interval query and produces
a bitmap-level expression whose leaves are ``(component, slot)`` pairs:

1. *membership rewrite* — a membership query becomes a disjunction of
   its minimal interval constituents
   (:func:`repro.queries.rewrite.minimal_intervals`);
2. *interval rewrite* — each interval constituent's endpoints are
   decomposed into digits (Equation 3) and the interval becomes a
   digit-level predicate tree: Equation (7) for equalities, the
   Equation (8) recursion for one-sided ranges (including the
   trailing-maximal-digit elision and the scheme-dependent choice of
   ``alpha_k``), and the common-prefix-plus-split form of §6.2 for
   two-sided ranges;
3. *predicate rewrite* — each digit-level predicate is expanded with
   the component scheme's one-component evaluation equations
   (Equations 1, 2, 4-6), with leaf keys relabelled to
   ``(component, slot)``.

Component positions follow the paper: component n is the most
significant.  Internally components are numbered by their position in
the base sequence tuple (index 0 = most significant); leaf keys use
those positions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.encoding.base import EncodingScheme
from repro.errors import QueryError
from repro.expr import Expr, and_of, not_of, one, or_of, simplify, zero
from repro.expr.nodes import And, Const, Leaf, Not, Or, Xor
from repro.expr.threshold import Threshold
from repro.index.decompose import decompose_value, validate_bases
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.queries.rewrite import minimal_intervals


def _relabel_component(expr: Expr, component: int) -> Expr:
    """Rewrite a one-component expression's leaves to (component, slot)."""
    if isinstance(expr, Leaf):
        return Leaf((component, expr.key))
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(_relabel_component(expr.child, component))
    if isinstance(expr, And):
        return And(tuple(_relabel_component(c, component) for c in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(_relabel_component(c, component) for c in expr.operands))
    if isinstance(expr, Xor):
        return Xor(tuple(_relabel_component(c, component) for c in expr.operands))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class QueryRewriter:
    """Rewrites queries into bitmap expressions for one index layout.

    Parameters
    ----------
    cardinality:
        Attribute cardinality C.
    bases:
        Base sequence, most significant first (validated).
    scheme:
        Encoding scheme used by every component (as in the paper's
        experiments, where an index's components share one encoding).
    """

    def __init__(
        self,
        cardinality: int,
        bases: Sequence[int],
        scheme: EncodingScheme,
    ):
        self.cardinality = cardinality
        self.bases = validate_bases(bases, cardinality)
        self.scheme = scheme
        self.num_components = len(self.bases)

    # ------------------------------------------------------------------
    # Per-digit predicate expansion (rewrite step 3)
    # ------------------------------------------------------------------

    def _digit_eq(self, component: int, digit: int) -> Expr:
        base = self.bases[component]
        return _relabel_component(self.scheme.eq_expr(base, digit), component)

    def _digit_le(self, component: int, digit: int) -> Expr:
        base = self.bases[component]
        if digit >= base - 1:
            return one()
        return _relabel_component(self.scheme.le_expr(base, digit), component)

    def _digit_interval(self, component: int, low: int, high: int) -> Expr:
        base = self.bases[component]
        return _relabel_component(
            self.scheme.interval_expr(base, low, high), component
        )

    def _alpha(self, component: int, digit: int) -> Expr:
        """The Eq. (8) ``alpha_k`` predicate: ``=`` or ``<=`` by scheme."""
        if self.scheme.prefers_equality:
            return self._digit_eq(component, digit)
        return self._digit_le(component, digit)

    # ------------------------------------------------------------------
    # Digit-level predicates (rewrite step 2)
    # ------------------------------------------------------------------

    def _eq_digits(self, digits: Sequence[int]) -> Expr:
        """Equation (7): conjunction of per-component equalities."""
        return and_of(
            self._digit_eq(component, digit)
            for component, digit in enumerate(digits)
        )

    def _le_digits(self, digits: Sequence[int], start: int = 0) -> Expr:
        """Equation (8): ``A_{start..} <= digits_{start..}``.

        ``start`` indexes into the base sequence (0 = most significant);
        the recursion proceeds toward less significant components.
        Trailing components whose digits are maximal are elided (the
        paper's ``LE(n, v) = LE(n', v)`` simplification).
        """
        # Elide least-significant digits that are all maximal.
        stop = len(digits)
        while stop - 1 > start and all(
            digits[i] == self.bases[i] - 1 for i in range(stop - 1, len(digits))
        ):
            stop -= 1
        # After elision, re-check: if every digit from `stop` on is
        # maximal, the predicate ends at stop - 1... handled by loop.
        return self._le_digits_rec(digits, start, stop)

    def _le_digits_rec(self, digits: Sequence[int], k: int, stop: int) -> Expr:
        base = self.bases[k]
        digit = digits[k]
        if k == stop - 1:
            return self._digit_le(k, digit)
        rest = self._le_digits_rec(digits, k + 1, stop)
        if digit == 0:
            return self._alpha_zero(k) & rest
        if digit == base - 1:
            return self._digit_le(k, digit - 1) | rest
        return self._digit_le(k, digit - 1) | (self._alpha(k, digit) & rest)

    def _alpha_zero(self, component: int) -> Expr:
        """``alpha_k`` for digit 0 (``A_k = 0`` and ``A_k <= 0`` coincide)."""
        if self.scheme.prefers_equality:
            return self._digit_eq(component, 0)
        return self._digit_le(component, 0)

    def _ge_digits(self, digits_minus_one: Sequence[int], start: int = 0) -> Expr:
        """``A_{start..} >= v`` via ``NOT (A <= v - 1)``.

        The caller passes the digit decomposition of ``v - 1`` restricted
        to the suffix starting at ``start``; a ``v`` whose suffix is all
        zeros must be handled by the caller (it is the trivial ONE).
        """
        return not_of(self._le_digits(digits_minus_one, start))

    # ------------------------------------------------------------------
    # Interval rewrite (step 2 dispatch)
    # ------------------------------------------------------------------

    def rewrite_interval(self, query: IntervalQuery) -> Expr:
        """Bitmap expression for one interval query."""
        if query.cardinality != self.cardinality:
            raise QueryError(
                f"query domain C={query.cardinality} does not match index "
                f"domain C={self.cardinality}"
            )
        body = self._rewrite_interval_body(query.low, query.high)
        body = simplify(body)
        return simplify(not_of(body)) if query.negated else body

    def _rewrite_interval_body(self, low: int, high: int) -> Expr:
        c = self.cardinality
        if c == 1:
            return one()
        if low == 0 and high == c - 1:
            return one()
        if self.num_components == 1:
            # One-component indexes use the scheme equations directly.
            return self._digit_interval(0, low, high)

        low_digits = decompose_value(low, self.bases)
        high_digits = decompose_value(high, self.bases)

        if low == high:
            return self._eq_digits(low_digits)
        if low == 0:
            return self._le_digits(high_digits)
        if high == c - 1:
            return self._ge_from_value(low)

        # Two-sided: evaluate the common most-significant prefix as
        # equalities (§6.2) and split at the first differing digit.
        prefix = 0
        while low_digits[prefix] == high_digits[prefix]:
            prefix += 1
        prefix_expr = and_of(
            self._digit_eq(i, low_digits[i]) for i in range(prefix)
        )
        suffix_expr = self._two_sided_suffix(low_digits, high_digits, prefix)
        return prefix_expr & suffix_expr if prefix else suffix_expr

    def _ge_from_value(self, low: int) -> Expr:
        """``A >= low`` for ``low > 0`` via the complement of a prefix."""
        minus_one = decompose_value(low - 1, self.bases)
        return self._ge_digits(minus_one)

    def _two_sided_suffix(
        self,
        low_digits: Sequence[int],
        high_digits: Sequence[int],
        split: int,
    ) -> Expr:
        """Two-sided range over the suffix starting at ``split``.

        Implements the paper's split (the "4326 <= A <= 4377" example):
        a middle band where the split digit alone decides, plus boundary
        conjunctions that recurse into the remaining digits.  When the
        suffix is a single component the scheme's native interval
        equation applies directly.
        """
        lo_d = low_digits[split]
        hi_d = high_digits[split]

        if split == self.num_components - 1:
            return self._digit_interval(split, lo_d, hi_d)

        lo_rest_min = all(
            low_digits[i] == 0 for i in range(split + 1, self.num_components)
        )
        hi_rest_max = all(
            high_digits[i] == self.bases[i] - 1
            for i in range(split + 1, self.num_components)
        )
        mid_lo = lo_d if lo_rest_min else lo_d + 1
        mid_hi = hi_d if hi_rest_max else hi_d - 1

        terms: list[Expr] = []
        if mid_lo <= mid_hi:
            terms.append(self._digit_interval(split, mid_lo, mid_hi))
        if not lo_rest_min:
            low_suffix_ge = self._suffix_ge(low_digits, split + 1)
            terms.append(self._digit_eq(split, lo_d) & low_suffix_ge)
        if not hi_rest_max:
            high_suffix_le = self._le_digits(high_digits, split + 1)
            terms.append(self._digit_eq(split, hi_d) & high_suffix_le)
        return or_of(terms)

    def _suffix_ge(self, digits: Sequence[int], start: int) -> Expr:
        """``A_{start..} >= digits_{start..}`` (suffix known non-zero)."""
        suffix_value = 0
        for i in range(start, self.num_components):
            suffix_value = suffix_value * self.bases[i] + digits[i]
        minus_one = suffix_value - 1
        rebuilt = list(digits)
        for i in range(self.num_components - 1, start - 1, -1):
            minus_one, rebuilt[i] = divmod(minus_one, self.bases[i])
        return self._ge_digits(rebuilt, start)

    # ------------------------------------------------------------------
    # Membership rewrite (step 1)
    # ------------------------------------------------------------------

    def rewrite_membership(self, query: MembershipQuery) -> list[Expr]:
        """Constituent expressions of a membership query (one per interval)."""
        if query.cardinality != self.cardinality:
            raise QueryError(
                f"query domain C={query.cardinality} does not match index "
                f"domain C={self.cardinality}"
            )
        return [
            self.rewrite_interval(interval)
            for interval in minimal_intervals(query)
        ]

    def rewrite_membership_threshold(self, query: MembershipQuery) -> Expr:
        """Membership as one threshold op instead of an OR of constituents.

        The constituents of a membership query are disjoint intervals,
        so "in any of them" is exactly "at least one of them":
        ``Threshold(1, constituents)`` — a single multi-way counting
        pass over the union of the constituents' bitmaps, with no
        pairwise OR intermediates.  This is the hybrid-encoding path
        the compressed engine and the fused evaluator collapse into one
        scan of each input.
        """
        constituents = self.rewrite_membership(query)
        if len(constituents) == 1:
            return constituents[0]
        return simplify(Threshold(1, tuple(constituents)))

    # ------------------------------------------------------------------
    # Threshold rewrite
    # ------------------------------------------------------------------

    def rewrite_threshold(self, query: ThresholdQuery) -> Expr:
        """Bitmap expression for a k-of-N threshold query.

        Each predicate rewrites through the ordinary pipeline into its
        combined expression; the k-of-N count then sits directly above
        them as a single :class:`~repro.expr.threshold.Threshold` node —
        one constituent, evaluated as one multi-way counting pass by
        every engine.
        """
        if query.cardinality != self.cardinality:
            raise QueryError(
                f"query domain C={query.cardinality} does not match index "
                f"domain C={self.cardinality}"
            )
        children = tuple(self.rewrite(p) for p in query.predicates)
        return simplify(Threshold(query.k, children))

    def rewrite(
        self, query: IntervalQuery | MembershipQuery | ThresholdQuery
    ) -> Expr:
        """Single combined expression for any supported query."""
        if isinstance(query, IntervalQuery):
            return self.rewrite_interval(query)
        if isinstance(query, ThresholdQuery):
            return self.rewrite_threshold(query)
        return simplify(or_of(self.rewrite_membership(query)))
