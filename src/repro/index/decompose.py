"""Attribute-value decomposition (Section 2, Equation 3).

Given a base sequence ``<b_n, ..., b_1>`` (most significant first, as
in the paper), an attribute value decomposes into n digits::

    v = v_n * (b_{n-1} * ... * b_1) + ... + v_2 * b_1 + v_1

with ``0 <= v_i < b_i``.  A valid base sequence has every ``b_i >= 2``
and covers the domain: ``b_n * ... * b_1 >= C``.  The paper additionally
fixes ``b_n = ceil(C / (b_{n-1} * ... * b_1))`` — the top base is as
small as the remaining bases allow; :func:`validate_bases` enforces
this *tightness* so no index wastes slots that can never be set.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from itertools import combinations_with_replacement

import numpy as np

from repro.encoding.base import EncodingScheme
from repro.errors import DecompositionError


def validate_bases(bases: Sequence[int], cardinality: int) -> tuple[int, ...]:
    """Check a base sequence against a domain; returns it as a tuple.

    Requirements: at least one component, every base >= 2 (except that a
    one-component index over a unary domain may have base 1), coverage
    of the domain, and tightness of the most significant base.
    """
    seq = tuple(int(b) for b in bases)
    if not seq:
        raise DecompositionError("base sequence must have at least one component")
    if cardinality < 1:
        raise DecompositionError(f"cardinality must be >= 1, got {cardinality}")
    if cardinality == 1:
        if seq != (1,):
            raise DecompositionError(
                f"a unary domain admits only the base sequence (1,), got {seq}"
            )
        return seq
    if any(b < 2 for b in seq):
        raise DecompositionError(f"every base must be >= 2, got {seq}")
    lower_product = math.prod(seq[1:])
    expected_top = -(-cardinality // lower_product)
    if expected_top < 2 and len(seq) > 1:
        raise DecompositionError(
            f"bases {seq} over-cover C={cardinality}: the top component "
            "would never exceed digit 0; drop a component"
        )
    if seq[0] != expected_top:
        raise DecompositionError(
            f"top base must be tight: ceil({cardinality} / {lower_product}) "
            f"= {expected_top}, got {seq[0]}"
        )
    return seq


def decompose_value(value: int, bases: Sequence[int]) -> tuple[int, ...]:
    """Digits of ``value`` under ``bases``, most significant first."""
    digits = [0] * len(bases)
    remainder = int(value)
    for i in range(len(bases) - 1, 0, -1):
        remainder, digits[i] = divmod(remainder, bases[i])
    digits[0] = remainder
    if digits[0] >= bases[0]:
        raise DecompositionError(
            f"value {value} does not fit base sequence {tuple(bases)}"
        )
    return tuple(digits)


def compose_value(digits: Sequence[int], bases: Sequence[int]) -> int:
    """Inverse of :func:`decompose_value`."""
    if len(digits) != len(bases):
        raise DecompositionError(
            f"{len(digits)} digits for {len(bases)} bases"
        )
    value = 0
    for digit, base in zip(digits, bases):
        if not 0 <= digit < base:
            raise DecompositionError(f"digit {digit} outside base {base}")
        value = value * base + digit
    return value


def decompose_column(values: np.ndarray, bases: Sequence[int]) -> list[np.ndarray]:
    """Vectorized decomposition of a whole column.

    Returns one digit array per component, most significant first.
    """
    remainder = np.asarray(values).astype(np.int64)
    columns: list[np.ndarray] = [np.empty(0)] * len(bases)
    for i in range(len(bases) - 1, 0, -1):
        remainder, columns[i] = np.divmod(remainder, bases[i])
    if remainder.size and remainder.max() >= bases[0]:
        raise DecompositionError(
            f"column values do not fit base sequence {tuple(bases)}"
        )
    columns[0] = remainder
    return columns


def uniform_bases(cardinality: int, num_components: int) -> tuple[int, ...]:
    """The near-uniform base sequence with ``num_components`` components.

    All components get ``ceil(C ** (1/n))`` except the top one, which is
    tightened to ``ceil(C / product(rest))``.  This is the natural
    default decomposition (the space-optimal one for a fixed component
    count is computed by :func:`optimal_bases`).
    """
    if cardinality == 1:
        if num_components != 1:
            raise DecompositionError("a unary domain admits only one component")
        return (1,)
    if num_components < 1:
        raise DecompositionError(
            f"need at least one component, got {num_components}"
        )
    if 2**num_components > max(cardinality, 2):
        raise DecompositionError(
            f"C={cardinality} does not admit {num_components} components "
            "with bases >= 2"
        )
    if num_components == 1:
        return (cardinality,)
    base = max(2, math.ceil(cardinality ** (1.0 / num_components)))
    rest = [base] * (num_components - 1)
    # If the uniform guess over-covers (tight top base would drop below
    # 2), shrink lower components until the top base is >= 2 again.
    i = len(rest) - 1
    while -(-cardinality // math.prod(rest)) < 2:
        while i >= 0 and rest[i] <= 2:
            i -= 1
        if i < 0:
            raise DecompositionError(
                f"C={cardinality} does not admit {num_components} "
                "components with bases >= 2"
            )
        rest[i] -= 1
    top = -(-cardinality // math.prod(rest))
    return validate_bases((top, *rest), cardinality)


def optimal_bases(
    cardinality: int,
    num_components: int,
    scheme: EncodingScheme,
    max_candidates: int = 2_000_000,
) -> tuple[int, ...]:
    """Space-optimal base sequence for a scheme at a fixed component count.

    Minimizes the total number of stored bitmaps
    ``sum_i scheme.num_bitmaps(b_i)`` over all valid base sequences
    (the paper's Figure 6 plots, for each n, the best index among all
    n-component ones).  The search enumerates non-decreasing lower-base
    multisets with product below C and tightens the top base; ties are
    broken toward more uniform sequences.
    """
    if cardinality == 1 or num_components == 1:
        return uniform_bases(cardinality, num_components)
    if 2**num_components > max(cardinality, 2):
        raise DecompositionError(
            f"C={cardinality} does not admit {num_components} components "
            "with bases >= 2"
        )

    best: tuple[int, ...] | None = None
    best_key: tuple[float, float] | None = None
    examined = 0
    max_lower = -(-cardinality // 2 ** (num_components - 2)) if num_components > 1 else 2
    for lower in combinations_with_replacement(
        range(2, max(3, max_lower + 1)), num_components - 1
    ):
        examined += 1
        if examined > max_candidates:
            break
        product = math.prod(lower)
        if product >= cardinality:
            continue
        top = -(-cardinality // product)
        if top < 2:
            continue
        candidate = (top, *sorted(lower, reverse=True))
        bitmaps = sum(scheme.num_bitmaps(b) for b in candidate)
        spread = max(candidate) - min(candidate)
        key = (bitmaps, spread)
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    if best is None:
        raise DecompositionError(
            f"no valid {num_components}-component base sequence for "
            f"C={cardinality}"
        )
    return validate_bases(best, cardinality)
