"""Multi-component bitmap indexes (Sections 2 and 6).

A base-``<b_n, ..., b_1>`` index decomposes each attribute value into n
digits (Equation 3) and indexes each digit position with its own set of
encoded bitmaps.  Query processing is a rewrite phase (membership ->
intervals -> digit predicates -> bitmap expressions) followed by an
evaluation phase over a buffer pool.
"""

from repro.index.advisor import Recommendation, recommend
from repro.index.compressed_engine import CompressedQueryEngine
from repro.index.costbased import CostBasedRewriter
from repro.index.bitmap_index import BitmapIndex, IndexSpec, UpdateReport
from repro.index.costmodel import (
    PredictedQueryCost,
    index_expected_scans,
    index_space,
    predict_query_cost,
    time_optimal_bases,
)
from repro.index.persist import (
    IndexValidationReport,
    load_index,
    save_index,
    validate_index,
)
from repro.index.segmented import SegmentedBitmapIndex
from repro.index.decompose import (
    compose_value,
    decompose_column,
    decompose_value,
    optimal_bases,
    uniform_bases,
    validate_bases,
)
from repro.index.evaluation import EvaluationResult, QueryEngine
from repro.index.rewrite import QueryRewriter

__all__ = [
    "BitmapIndex",
    "IndexSpec",
    "UpdateReport",
    "recommend",
    "Recommendation",
    "save_index",
    "load_index",
    "validate_index",
    "IndexValidationReport",
    "CompressedQueryEngine",
    "SegmentedBitmapIndex",
    "CostBasedRewriter",
    "index_expected_scans",
    "index_space",
    "time_optimal_bases",
    "predict_query_cost",
    "PredictedQueryCost",
    "QueryEngine",
    "EvaluationResult",
    "QueryRewriter",
    "decompose_value",
    "decompose_column",
    "compose_value",
    "validate_bases",
    "uniform_bases",
    "optimal_bases",
]
