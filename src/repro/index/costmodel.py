"""Analytic cost model for multi-component indexes.

The one-component model (:mod:`repro.encoding.costmodel`) counts leaves
of the scheme equations; the multi-component generalization counts the
distinct bitmaps the Section 6 rewriter's expressions touch, by exact
enumeration of a query class.  On top of it,
:func:`time_optimal_bases` searches the base-sequence space for the
decomposition minimizing expected scans at a fixed component count —
the time-side counterpart of
:func:`repro.index.decompose.optimal_bases` (which minimizes space),
together spanning the §2 design-space optimization.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations_with_replacement

from repro.encoding.base import EncodingScheme
from repro.encoding.costmodel import query_class_queries
from repro.errors import DecompositionError
from repro.expr import expression_operation_count, expression_scan_count
from repro.index.decompose import validate_bases
from repro.index.rewrite import QueryRewriter
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery


def index_expected_scans(
    cardinality: int,
    bases: Sequence[int],
    scheme: EncodingScheme,
    query_class: str,
) -> float:
    """Expected distinct-bitmap scans of a (scheme, bases) design.

    Exact enumeration of the query class through the rewriter; reduces
    to :func:`repro.encoding.costmodel.expected_scans` for one
    component.
    """
    rewriter = QueryRewriter(cardinality, bases, scheme)
    total = 0
    count = 0
    for low, high in query_class_queries(cardinality, query_class):
        expr = rewriter.rewrite_interval(IntervalQuery(low, high, cardinality))
        total += expression_scan_count(expr)
        count += 1
    if count == 0:
        return 0.0
    return total / count


def index_space(bases: Sequence[int], scheme: EncodingScheme) -> int:
    """Stored bitmaps of a (scheme, bases) design."""
    return sum(scheme.num_bitmaps(base) for base in bases)


@dataclass(frozen=True)
class PredictedQueryCost:
    """Analytic prediction of what one query charges the simulator.

    Produced by :func:`predict_query_cost` without running the engine;
    the ``repro.obs`` cross-validation suite asserts these numbers equal
    the observed :class:`~repro.storage.CostClock` counters exactly.
    """

    #: Distinct-bitmap scans (``EvalStats.scans``).
    scans: int
    #: Buffer-pool misses, i.e. read requests issued to the store.
    read_requests: int
    #: Pages transferred by those reads.
    pages_read: int
    #: Bulk logical operations the evaluator performs.
    operations: int
    #: Uncompressed 64-bit words each bulk operation touches.
    words_per_operation: int

    @property
    def words_operated(self) -> int:
        """Total words charged to the clock (``operations x words``)."""
        return self.operations * self.words_per_operation


def predict_query_cost(
    index,
    query: IntervalQuery | MembershipQuery | ThresholdQuery,
    strategy: str = "component-wise",
) -> PredictedQueryCost:
    """Predict the exact simulator charges of one query, analytically.

    The prediction models a *cold* :class:`~repro.storage.BufferPool`
    large enough to hold the query's whole working set (the engine's
    default sizing): every distinct bitmap is read from the store once,
    so ``read_requests`` is the number of distinct leaves and
    ``pages_read`` sums their stored page footprints.  ``operations``
    replays the evaluator's memoized walk per constituent
    (:func:`repro.expr.expression_operation_count`) plus the final ORs
    combining constituents.  Scan counts are strategy-dependent:
    component-wise fetches each distinct bitmap once per query, while
    query-wise/scheduled re-scan bitmaps shared between constituents.
    """
    if isinstance(query, IntervalQuery):
        constituents = [index.rewriter.rewrite_interval(query)]
    elif isinstance(query, MembershipQuery):
        constituents = index.rewriter.rewrite_membership(query)
    elif isinstance(query, ThresholdQuery):
        # One constituent: the k-of-N node over the rewritten
        # predicates; a Threshold over n children charges n bulk ops,
        # which expression_operation_count already accounts for.
        constituents = [index.rewriter.rewrite_threshold(query)]
    else:
        raise TypeError(f"unsupported query type {type(query).__name__}")

    distinct_keys = set()
    for expr in constituents:
        distinct_keys |= expr.leaf_keys()
    pages_read = sum(index.store.info(key).pages for key in distinct_keys)

    operations = sum(expression_operation_count(e) for e in constituents)
    if len(constituents) > 1:
        operations += len(constituents) - 1

    if strategy == "component-wise":
        scans = len(distinct_keys)
    else:
        scans = sum(len(e.leaf_keys()) for e in constituents)

    return PredictedQueryCost(
        scans=scans,
        read_requests=len(distinct_keys),
        pages_read=pages_read,
        operations=operations,
        words_per_operation=max(1, -(-index.num_records // 64)),
    )


def candidate_base_sequences(
    cardinality: int, num_components: int
) -> list[tuple[int, ...]]:
    """All tight base sequences with ``num_components`` components.

    Lower bases are enumerated as non-increasing multisets — component
    order never changes space, and the sequences are canonicalized to
    non-increasing order as the representative layout — with the top
    base tightened to the domain.
    """
    if num_components == 1:
        return [(cardinality,)] if cardinality >= 1 else []
    sequences = []
    seen = set()
    for lower in combinations_with_replacement(
        range(2, cardinality), num_components - 1
    ):
        product = math.prod(lower)
        if product >= cardinality:
            continue
        top = -(-cardinality // product)
        if top < 2:
            continue
        candidate = (top, *sorted(lower, reverse=True))
        if candidate in seen:
            continue
        seen.add(candidate)
        try:
            sequences.append(validate_bases(candidate, cardinality))
        except DecompositionError:
            continue
    return sequences


def time_optimal_bases(
    cardinality: int,
    num_components: int,
    scheme: EncodingScheme,
    query_class: str = "RQ",
    space_budget: int | None = None,
    max_candidates: int = 5000,
) -> tuple[int, ...]:
    """The base sequence minimizing expected scans at a component count.

    ``space_budget`` (in bitmaps) restricts the candidates; ties break
    toward smaller space, then toward more uniform sequences.  Raises
    :class:`DecompositionError` when no candidate qualifies.
    """
    best: tuple[int, ...] | None = None
    best_key: tuple[float, int, int] | None = None
    candidates = candidate_base_sequences(cardinality, num_components)
    if len(candidates) > max_candidates:
        raise DecompositionError(
            f"{len(candidates)} candidate base sequences exceed the guard "
            f"({max_candidates}); lower the component count or cardinality"
        )
    for bases in candidates:
        space = index_space(bases, scheme)
        if space_budget is not None and space > space_budget:
            continue
        scans = index_expected_scans(cardinality, bases, scheme, query_class)
        key = (scans, space, max(bases) - min(bases))
        if best_key is None or key < best_key:
            best, best_key = bases, key
    if best is None:
        raise DecompositionError(
            f"no {num_components}-component design for C={cardinality} fits "
            f"a budget of {space_budget} bitmaps"
        )
    return best
