"""Horizontally segmented bitmap indexes (extension).

Production bitmap indexes partition the relation into fixed-size
horizontal segments with an independent index per segment: appends only
touch the tail segment (no decode/re-encode of old bitmaps, unlike
:meth:`~repro.index.BitmapIndex.append`), segments can be evaluated
independently (parallelism, per-segment pruning), and per-segment
answers concatenate into the global answer because record ids are
segment-local offsets.

:class:`SegmentedBitmapIndex` mirrors the :class:`~repro.index.BitmapIndex`
query surface; every segment shares the same
:class:`~repro.index.IndexSpec`.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap import BitVector, concatenate
from repro.errors import EncodingSchemeError, QueryError, ReproError
from repro.expr import EvalStats
from repro.index.bitmap_index import BitmapIndex, IndexSpec, UpdateReport
from repro.index.evaluation import EvaluationResult
from repro.queries.model import IntervalQuery, MembershipQuery

Query = IntervalQuery | MembershipQuery


class SegmentedBitmapIndex:
    """A bitmap index split into fixed-size horizontal segments."""

    def __init__(self, spec: IndexSpec, segment_size: int):
        if segment_size < 1:
            raise ReproError(
                f"segment size must be >= 1, got {segment_size}"
            )
        self.spec = spec
        self.segment_size = segment_size
        self._segments: list[BitmapIndex] = []
        #: Monotonic update counter: bumped by every :meth:`append`
        #: (mirrors :attr:`repro.index.BitmapIndex.epoch`).
        self.epoch = 0

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        spec: IndexSpec,
        segment_size: int = 65_536,
    ) -> "SegmentedBitmapIndex":
        """Build from a column, splitting into ``segment_size`` chunks."""
        index = cls(spec, segment_size)
        index.append(values)
        return index

    # ------------------------------------------------------------------

    @property
    def num_segments(self) -> int:
        """Number of segments currently materialized."""
        return len(self._segments)

    @property
    def num_records(self) -> int:
        """Total records across segments."""
        return sum(segment.num_records for segment in self._segments)

    @property
    def cardinality(self) -> int:
        """Attribute cardinality C."""
        return self.spec.cardinality

    def segments(self) -> list[BitmapIndex]:
        """The per-segment indexes, in record order."""
        return list(self._segments)

    def size_bytes(self) -> int:
        """Total stored size across segments."""
        return sum(segment.size_bytes() for segment in self._segments)

    def num_bitmaps(self) -> int:
        """Total stored bitmaps across segments."""
        return sum(segment.num_bitmaps() for segment in self._segments)

    # ------------------------------------------------------------------

    def append(self, values: np.ndarray) -> UpdateReport:
        """Append records, filling the tail segment before opening new ones.

        Only the tail segment's bitmaps are ever rewritten; sealed
        segments are immutable — the property that makes segmented
        layouts append-friendly.  An empty batch changes nothing and
        must not bump the epoch (a bump would sweep every serving
        result cache keyed on it for no reason).
        """
        vals = np.asarray(values)
        if vals.size == 0:
            return UpdateReport(
                records_appended=0, bitmaps_extended=0, bitmaps_touched=0
            )
        if vals.min() < 0 or vals.max() >= self.cardinality:
            raise EncodingSchemeError(
                f"batch values outside domain [0, {self.cardinality})"
            )
        touched = 0
        extended = 0
        offset = 0
        while offset < vals.size:
            if (
                self._segments
                and self._segments[-1].num_records < self.segment_size
            ):
                tail = self._segments[-1]
                room = self.segment_size - tail.num_records
                chunk = vals[offset : offset + room]
                report = tail.append(chunk)
                touched += report.bitmaps_touched
                extended += report.bitmaps_extended
            else:
                chunk = vals[offset : offset + self.segment_size]
                segment = BitmapIndex.build(chunk, self.spec)
                self._segments.append(segment)
                touched += sum(
                    1
                    for key in segment.store.keys()
                    if segment.store.get(key).any()
                )
                extended += segment.num_bitmaps()
            offset += len(chunk)
        self.epoch += 1
        return UpdateReport(
            records_appended=int(vals.size),
            bitmaps_extended=extended,
            bitmaps_touched=touched,
        )

    # ------------------------------------------------------------------

    def split_at(
        self, row: int
    ) -> tuple["SegmentedBitmapIndex", "SegmentedBitmapIndex"]:
        """Split into two indexes at a *segment-boundary* row.

        Returns ``(left, right)`` where ``left`` holds rows
        ``[0, row)`` and ``right`` holds rows ``[row, num_records)``.
        Sealed segments are shared by reference — no bitmap is decoded
        or re-encoded, which is what makes shard splits cheap — so
        ``row`` must fall on a segment boundary (``k * segment_size``
        within range).  Callers that need an arbitrary split point
        rebuild from rows instead.

        Both halves start at epoch 0 (they are new indexes with new
        update histories); ``self`` is not mutated and must simply be
        discarded by callers that treat the split as a move.
        """
        if row < 0 or row > self.num_records:
            raise ReproError(
                f"split row {row} outside [0, {self.num_records}]"
            )
        if row % self.segment_size:
            raise ReproError(
                f"split row {row} is not a multiple of the segment "
                f"size {self.segment_size}; rebuild from rows for "
                f"arbitrary split points"
            )
        boundary = row // self.segment_size
        left = SegmentedBitmapIndex(self.spec, self.segment_size)
        left._segments = self._segments[:boundary]
        right = SegmentedBitmapIndex(self.spec, self.segment_size)
        right._segments = self._segments[boundary:]
        return left, right

    # ------------------------------------------------------------------

    def query(self, query: Query, **engine_kwargs) -> EvaluationResult:
        """Evaluate over every segment and concatenate the answers.

        Keyword arguments (``strategy``, ``fused``, ``block_words``,
        ...) configure each segment's throwaway engine.
        """
        if isinstance(query, (IntervalQuery, MembershipQuery)):
            if query.cardinality != self.cardinality:
                raise QueryError(
                    f"query domain C={query.cardinality} does not match "
                    f"index domain C={self.cardinality}"
                )
        else:
            raise QueryError(f"unsupported query type {type(query).__name__}")

        stats = EvalStats()
        simulated = 0.0
        pieces: list[BitVector] = []
        for segment in self._segments:
            result = segment.query(query, **engine_kwargs)
            stats.merge(result.stats)
            simulated += result.simulated_ms
            pieces.append(result.bitmap)
        bitmap = (
            concatenate(pieces) if pieces else BitVector.zeros(0)
        )
        return EvaluationResult(
            bitmap=bitmap,
            stats=stats,
            simulated_ms=simulated,
            strategy="segmented",
        )

    def __repr__(self) -> str:
        return (
            f"SegmentedBitmapIndex({self.spec.label}, "
            f"segments={self.num_segments} x {self.segment_size}, "
            f"N={self.num_records})"
        )
