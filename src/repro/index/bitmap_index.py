"""The multi-component bitmap index.

:class:`BitmapIndex` ties the pieces together: it decomposes the
indexed column into digit columns (Equation 3), materializes each
component's bitmaps under the chosen encoding scheme, stores them
codec-encoded in a :class:`~repro.storage.BitmapStore`, and answers
queries through the Section 6 rewrite/evaluation pipeline.

Stored bitmap keys are ``(component, slot)`` where ``component`` is the
position in the base sequence (0 = most significant) and ``slot`` is
the encoding scheme's slot label.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.compress import Codec, get_codec
from repro.encoding import EncodingScheme, get_scheme
from repro.errors import EncodingSchemeError
from repro.index.decompose import decompose_column, uniform_bases, validate_bases
from repro.index.evaluation import EvaluationResult, QueryEngine
from repro.index.rewrite import QueryRewriter
from repro.queries.model import IntervalQuery, MembershipQuery
from repro.storage import BitmapStore, CostClock, DEFAULT_PAGE_SIZE


@dataclass(frozen=True)
class UpdateReport:
    """Outcome of a batch append (§4.2 accounting)."""

    #: Records added to the relation.
    records_appended: int
    #: Bitmaps physically extended (always all of them).
    bitmaps_extended: int
    #: Bitmaps that gained at least one set bit — the paper's
    #: update-cost measure, amortized over the batch.
    bitmaps_touched: int


@dataclass(frozen=True)
class IndexSpec:
    """Design-point description of a bitmap index.

    ``bases`` may be given explicitly (most significant first) or left
    None with ``num_components`` set, in which case the near-uniform
    decomposition is used.

    ``reorder`` opts into the build-time row-reordering preprocessing
    pass (:mod:`repro.table.reorder`): ``"lexicographic"`` sorts the
    column before building, storing the row permutation so answers map
    back to original record ids at the result boundary.
    """

    cardinality: int
    scheme: str = "E"
    num_components: int = 1
    bases: tuple[int, ...] | None = None
    codec: str = "raw"
    reorder: str = "none"

    def resolved_bases(self) -> tuple[int, ...]:
        """The concrete base sequence of this spec."""
        if self.bases is not None:
            return validate_bases(self.bases, self.cardinality)
        return uniform_bases(self.cardinality, self.num_components)

    @property
    def label(self) -> str:
        """Display label, e.g. ``"I<8,7>/bbc"``."""
        bases = ",".join(str(b) for b in self.resolved_bases())
        return f"{self.scheme}<{bases}>/{self.codec}"


class BitmapIndex:
    """A built, queryable multi-component bitmap index."""

    def __init__(
        self,
        spec: IndexSpec,
        store: BitmapStore,
        num_records: int,
        scheme: EncodingScheme,
        bases: tuple[int, ...],
        reordering=None,
    ):
        self.spec = spec
        self.store = store
        self.num_records = num_records
        self.scheme = scheme
        self.bases = bases
        self.rewriter = QueryRewriter(spec.cardinality, bases, scheme)
        #: Build-time row reordering
        #: (:class:`~repro.table.reorder.RowReordering`) or None.  The
        #: stored bitmaps are laid out in sorted row order; engines call
        #: :meth:`restore_row_order` on final answers so every consumer
        #: past the result boundary sees original record ids.
        self.reordering = reordering
        #: Monotonic update counter: bumped by every :meth:`append`.
        #: Caches keyed by ``(epoch, expression)`` — the serving layer's
        #: result cache — are invalidated wholesale by a bump.
        self.epoch = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        spec: IndexSpec,
        store: BitmapStore | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        reordering=None,
    ) -> "BitmapIndex":
        """Build an index over ``values`` according to ``spec``.

        ``values`` must lie in ``[0, spec.cardinality)``.  When ``store``
        is None an in-memory store with the spec's codec is created.

        Row reordering: an explicit ``reordering``
        (:class:`~repro.table.reorder.RowReordering`, e.g. a table-level
        joint sort shared across columns) is applied to ``values``
        before decomposition; otherwise ``spec.reorder`` other than
        ``"none"`` sorts the single column.  Either way the stored
        bitmaps live in sorted row order and answers are mapped back at
        the result boundary (:meth:`restore_row_order`).
        """
        from repro.table.reorder import RowReordering, validate_strategy

        vals = np.asarray(values)
        if vals.size and (vals.min() < 0 or vals.max() >= spec.cardinality):
            raise EncodingSchemeError(
                f"column values outside domain [0, {spec.cardinality})"
            )
        if reordering is not None:
            vals = reordering.apply(vals)
        elif validate_strategy(spec.reorder) != "none":
            reordering = RowReordering.from_sort(vals, spec.reorder)
            vals = reordering.apply(vals)
        scheme = get_scheme(spec.scheme)
        bases = spec.resolved_bases()
        if store is None:
            store = BitmapStore(codec=spec.codec, page_size=page_size)
        else:
            expected = get_codec(spec.codec)
            if store.codec.name != expected.name:
                raise EncodingSchemeError(
                    f"store codec {store.codec.name!r} does not match spec "
                    f"codec {spec.codec!r}"
                )
        digit_columns = decompose_column(vals, bases)
        for component, (base, column) in enumerate(zip(bases, digit_columns)):
            for slot, vector in scheme.build(column, base).items():
                store.put((component, slot), vector)
        return cls(
            spec, store, int(vals.size), scheme, bases, reordering=reordering
        )

    # ------------------------------------------------------------------
    # Batch updates (§4.2's batched-update setting)
    # ------------------------------------------------------------------

    def append(self, values: np.ndarray) -> "UpdateReport":
        """Append a batch of new records to the index.

        Every stored bitmap is extended by ``len(values)`` bits; the
        report counts how many bitmaps actually gained a set bit — the
        §4.2 update-cost measure, amortized over the batch.  Existing
        record ids are unchanged; new records follow them.

        Buffer pools of engines created *before* an append detect the
        replaced payloads through the store's per-key write versions and
        re-read them, so existing engines stay usable; the index
        :attr:`epoch` is bumped so expression-level result caches can
        invalidate.  An *empty* batch changes nothing and therefore must
        not bump the epoch — a bump would needlessly sweep every serving
        result cache keyed on it.

        On a reordered index the new rows land past the sorted prefix in
        arrival order (the permutation gains identity entries), so
        appends never trigger a re-sort.
        """
        from repro.bitmap import concatenate
        from repro.index.decompose import decompose_column

        vals = np.asarray(values)
        if vals.size == 0:
            return UpdateReport(
                records_appended=0, bitmaps_extended=0, bitmaps_touched=0
            )
        if vals.min() < 0 or vals.max() >= self.cardinality:
            raise EncodingSchemeError(
                f"batch values outside domain [0, {self.cardinality})"
            )
        digit_columns = decompose_column(vals, self.bases)
        touched = 0
        for component, (base, column) in enumerate(
            zip(self.bases, digit_columns)
        ):
            extensions = self.scheme.build(column, base)
            for slot, extension in extensions.items():
                key = (component, slot)
                current = self.store.get(key)
                self.store.put(key, concatenate([current, extension]))
                if extension.any():
                    touched += 1
        self.num_records += int(vals.size)
        if self.reordering is not None:
            self.reordering.extend(int(vals.size))
        self.epoch += 1
        return UpdateReport(
            records_appended=int(vals.size),
            bitmaps_extended=self.num_bitmaps(),
            bitmaps_touched=touched,
        )

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Attribute cardinality C."""
        return self.spec.cardinality

    @property
    def num_components(self) -> int:
        """Number of components n."""
        return len(self.bases)

    def num_bitmaps(self) -> int:
        """Total stored bitmaps across all components."""
        return len(self.store)

    def size_bytes(self) -> int:
        """Total encoded payload bytes (the index's space cost)."""
        return self.store.total_bytes()

    def size_pages(self) -> int:
        """Total page footprint."""
        return self.store.total_pages()

    def uncompressed_bytes(self) -> int:
        """Size the same layout would occupy with the raw codec.

        Each bitmap occupies ``ceil(N / 64) * 8`` bytes uncompressed.
        """
        words = -(-self.num_records // 64)
        return self.num_bitmaps() * words * 8

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def restore_row_order(self, bitmap):
        """Translate an answer from stored (sorted) to original row order.

        The single place the build-time permutation re-enters query
        evaluation: both engines call it on their *final* answer, so
        everything upstream — compressed-domain ops, fused evaluation,
        thresholds, shared-scan batching — runs untouched in sorted
        space.  A no-op (the same object) for unreordered indexes.
        """
        if self.reordering is None or self.reordering.is_identity:
            return bitmap
        return self.reordering.restore_bitmap(bitmap)

    def use_cost_based_rewriter(self) -> None:
        """Swap in a rewriter that prices expression choices by the
        actual stored bitmap sizes (see :mod:`repro.index.costbased`).

        Matters for compressed equality-encoded indexes, where the
        Equation (1) count heuristic can pick the more expensive side.
        """
        from repro.index.costbased import CostBasedRewriter

        self.rewriter = CostBasedRewriter(
            self.spec.cardinality, self.bases, self.scheme, self.store
        )

    def engine(
        self,
        buffer_pages: int | None = None,
        clock: CostClock | None = None,
        strategy: str = "component-wise",
        **kwargs,
    ) -> QueryEngine:
        """A query engine over this index.

        ``buffer_pages`` defaults to a pool comfortably larger than the
        index (the paper notes 11 MB was adequate for its runs).
        Additional keyword arguments (``fused``, ``block_words``) pass
        through to :class:`~repro.index.evaluation.QueryEngine`.
        """
        return QueryEngine(
            self,
            buffer_pages=buffer_pages,
            clock=clock,
            strategy=strategy,
            **kwargs,
        )

    def query(
        self, query: IntervalQuery | MembershipQuery, **engine_kwargs
    ) -> EvaluationResult:
        """One-shot convenience evaluation with a fresh default engine.

        Keyword arguments (``strategy``, ``fused``, ``block_words``,
        ...) configure the throwaway engine.
        """
        return self.engine(**engine_kwargs).execute(query)

    def __repr__(self) -> str:
        return (
            f"BitmapIndex({self.spec.label}, C={self.cardinality}, "
            f"N={self.num_records}, bitmaps={self.num_bitmaps()})"
        )
