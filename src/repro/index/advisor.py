"""Index design advisor (extension of the paper's framework).

Section 2 frames bitmap index design as "an optimization problem of
identifying a point in this two-dimensional space that exhibits optimal
space-time performance".  The advisor operationalizes that: given a
workload (query sets) and a space budget, it measures every candidate
design point (scheme x component count x codec) on a sample of the data
and recommends the fastest design that fits the budget, along with the
full Pareto frontier for inspection.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.pareto import pareto_frontier
from repro.analysis.spacetime import SpaceTimePoint, measure_design
from repro.encoding import ALL_SCHEME_NAMES, get_scheme
from repro.errors import ExperimentError
from repro.index.bitmap_index import IndexSpec
from repro.index.decompose import optimal_bases
from repro.queries.model import IntervalQuery, MembershipQuery

Query = IntervalQuery | MembershipQuery


@dataclass(frozen=True)
class Recommendation:
    """Outcome of an advisor run."""

    #: The fastest design within the space budget (None if none fits).
    best: SpaceTimePoint | None
    #: Pareto frontier over all measured candidates.
    frontier: tuple[SpaceTimePoint, ...]
    #: Every measured candidate, sorted by space.
    candidates: tuple[SpaceTimePoint, ...]


def candidate_specs(
    cardinality: int,
    schemes: Sequence[str] = ALL_SCHEME_NAMES,
    component_counts: Sequence[int] = (1, 2, 3),
    codecs: Sequence[str] = ("raw", "bbc"),
) -> list[IndexSpec]:
    """The advisor's candidate grid."""
    specs: list[IndexSpec] = []
    for scheme_name in schemes:
        scheme = get_scheme(scheme_name)
        for n in component_counts:
            try:
                bases = optimal_bases(cardinality, n, scheme)
            except Exception:
                continue
            for codec in codecs:
                specs.append(
                    IndexSpec(
                        cardinality=cardinality,
                        scheme=scheme_name,
                        bases=bases,
                        codec=codec,
                    )
                )
    return specs


def recommend(
    values: np.ndarray,
    cardinality: int,
    workload: dict[str, Sequence[Query]],
    space_budget_bytes: int | None = None,
    schemes: Sequence[str] = ALL_SCHEME_NAMES,
    component_counts: Sequence[int] = (1, 2, 3),
    codecs: Sequence[str] = ("raw", "bbc"),
    sample_records: int | None = 50_000,
    seed: int = 0,
) -> Recommendation:
    """Measure the candidate grid on (a sample of) the data and recommend.

    ``workload`` maps labels to query sequences, as in
    :func:`repro.analysis.spacetime.measure_design`.  When
    ``sample_records`` is smaller than the column, measurement runs on a
    random sample and the measured space is scaled back up linearly
    (bitmap space is proportional to N).
    """
    vals = np.asarray(values)
    scale = 1.0
    if sample_records is not None and vals.size > sample_records:
        rng = np.random.default_rng(seed)
        sample = rng.choice(vals, size=sample_records, replace=False)
        scale = vals.size / sample_records
        vals = sample
    if not workload:
        raise ExperimentError("advisor needs a non-empty workload")

    points = [
        measure_design(vals, spec, workload)
        for spec in candidate_specs(cardinality, schemes, component_counts, codecs)
    ]
    if scale != 1.0:
        points = [
            SpaceTimePoint(
                spec=p.spec,
                num_bitmaps=p.num_bitmaps,
                space_bytes=int(p.space_bytes * scale),
                space_pages=int(p.space_pages * scale),
                uncompressed_bytes=int(p.uncompressed_bytes * scale),
                avg_time_ms=p.avg_time_ms * scale,
                avg_scans=p.avg_scans,
                per_set_ms={k: v * scale for k, v in p.per_set_ms.items()},
            )
            for p in points
        ]

    frontier = pareto_frontier(
        points, space=lambda p: p.space_bytes, time=lambda p: p.avg_time_ms
    )
    fitting = [
        p
        for p in points
        if space_budget_bytes is None or p.space_bytes <= space_budget_bytes
    ]
    best = min(fitting, key=lambda p: p.avg_time_ms) if fitting else None
    return Recommendation(
        best=best,
        frontier=tuple(frontier),
        candidates=tuple(sorted(points, key=lambda p: p.space_bytes)),
    )
