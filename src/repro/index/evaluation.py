"""Query evaluation phase over a buffer pool (Section 6.3).

Two strategies bound the solution space of the buffer-aware scheduling
problem:

* ``"component-wise"`` — the paper's choice for its performance study:
  all constituent interval queries of a membership query are evaluated
  together, with every distinct bitmap fetched exactly once per query
  (a query-local cache sits in front of the buffer pool, and fetches
  are issued in component order);
* ``"query-wise"`` — constituents are evaluated one at a time with no
  query-local sharing; the shared buffer pool may still hit, but a
  bitmap used by several constituents is re-requested and, under a
  small pool, re-read from disk.

The paper leaves "efficient heuristics for the scheduling problem" as
future work; this module adds one:

* ``"scheduled"`` — query-wise memory footprint (one intermediate at a
  time, no query-local cache) but with the constituents greedily
  ordered so that consecutive constituents share as many bitmaps as
  possible — a shared bitmap is then still buffer-resident when the
  next constituent asks for it.  The ordering is nearest-neighbour
  chaining on leaf-set overlap, O(k^2) in the number of constituents.

All strategies produce identical answers; they differ only in their
fetch schedules, which the buffer/clock statistics expose.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field

from repro import obs as _obs
from repro.bitmap import BitVector, or_all
from repro.errors import QueryError
from repro.expr import (
    DEFAULT_BLOCK_WORDS,
    EvalStats,
    Expr,
    evaluate,
    evaluate_fused,
    plan_physical,
)
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.storage import BufferPool, BufferStats, CostClock

STRATEGIES = ("component-wise", "query-wise", "scheduled")
FUSED_MODES = (True, False, "auto")


def query_class_of(
    query: IntervalQuery | MembershipQuery | ThresholdQuery,
) -> str:
    """Observability label: the paper class, ``"MQ"``, or ``"TH"``."""
    if isinstance(query, (IntervalQuery, ThresholdQuery)):
        return query.query_class
    return "MQ"


@dataclass
class EvaluationResult:
    """Answer and cost accounting for one query."""

    bitmap: BitVector
    stats: EvalStats
    simulated_ms: float = 0.0
    strategy: str = "component-wise"

    @property
    def row_count(self) -> int:
        """Number of qualifying records."""
        return self.bitmap.count()

    def row_ids(self):
        """Sorted record ids of qualifying records."""
        return self.bitmap.to_indices()


def schedule_constituents(constituents: list[Expr]) -> list[Expr]:
    """Order constituents to maximize consecutive leaf-set overlap.

    Nearest-neighbour chaining: start from the constituent with the
    *smallest* total overlap against all others (an extremity — a chain
    of sharing constituents must be walked end to end, not from its
    middle), then repeatedly append the unvisited constituent sharing
    the most leaf keys with the previous one.  Ties break toward
    smaller leaf sets (cheaper to keep resident) and then input order,
    so the schedule is deterministic.
    """
    if len(constituents) <= 2:
        return list(constituents)
    leaf_sets = [expr.leaf_keys() for expr in constituents]

    def overlap(i: int, j: int) -> int:
        return len(leaf_sets[i] & leaf_sets[j])

    remaining = set(range(len(constituents)))
    start = min(
        remaining,
        key=lambda i: (
            sum(overlap(i, j) for j in remaining if j != i),
            len(leaf_sets[i]),
            i,
        ),
    )
    order = [start]
    remaining.discard(start)
    while remaining:
        prev = order[-1]
        nxt = max(
            remaining,
            key=lambda i: (overlap(prev, i), -len(leaf_sets[i]), -i),
        )
        order.append(nxt)
        remaining.discard(nxt)
    return [constituents[i] for i in order]


class QueryEngine:
    """Evaluates queries against one :class:`~repro.index.BitmapIndex`."""

    def __init__(
        self,
        index,
        buffer_pages: int | None = None,
        clock: CostClock | None = None,
        strategy: str = "component-wise",
        fused: bool | str = "auto",
        block_words: int = DEFAULT_BLOCK_WORDS,
    ):
        if strategy not in STRATEGIES:
            raise QueryError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if fused not in FUSED_MODES:
            raise QueryError(
                f"unknown fused mode {fused!r}; expected one of {FUSED_MODES}"
            )
        self.index = index
        self.strategy = strategy
        self.fused = fused
        self.block_words = int(block_words)
        self.clock = clock if clock is not None else CostClock()
        if buffer_pages is None:
            # Default: the whole decoded index fits (the paper's 11 MB
            # pool was "adequate"), with a floor of one page.
            words = -(-index.num_records // 64)
            decoded_pages_per_bitmap = max(
                1, -(-words * 8 // index.store.page_size)
            )
            buffer_pages = max(1, decoded_pages_per_bitmap * (index.num_bitmaps() + 2))
        self.pool = BufferPool(index.store, buffer_pages, clock=self.clock)

    @property
    def buffer_stats(self) -> BufferStats:
        """Hit/miss/eviction counters of the underlying pool."""
        return self.pool.stats

    # ------------------------------------------------------------------

    def execute(
        self, query: IntervalQuery | MembershipQuery | ThresholdQuery
    ) -> EvaluationResult:
        """Rewrite and evaluate ``query``, charging the engine's clock.

        When a :mod:`repro.obs` instance is installed, the rewrite and
        evaluation run inside a ``query`` span (tagged with scheme,
        strategy and query class) and the simulated latency lands in the
        per-(scheme, class) ``query.simulated_ms`` histogram.
        """
        o = _obs.active()
        if o is None:
            return self._rewrite_and_execute(query)
        klass = query_class_of(query)
        scheme = self.index.scheme.name
        with o.span(
            "query",
            scheme=scheme,
            strategy=self.strategy,
            klass=klass,
            engine="decoded",
        ):
            result = self._rewrite_and_execute(query)
        o.observe("query.simulated_ms", result.simulated_ms,
                  scheme=scheme, klass=klass)
        o.count("query.executed", 1, scheme=scheme, klass=klass)
        return result

    def _rewrite_and_execute(
        self, query: IntervalQuery | MembershipQuery
    ) -> EvaluationResult:
        if isinstance(query, IntervalQuery):
            constituents = [self.index.rewriter.rewrite_interval(query)]
        elif isinstance(query, MembershipQuery):
            constituents = self.index.rewriter.rewrite_membership(query)
        elif isinstance(query, ThresholdQuery):
            constituents = [self.index.rewriter.rewrite_threshold(query)]
        else:
            raise QueryError(f"unsupported query type {type(query).__name__}")
        return self._execute_constituents(constituents)

    def _execute_constituents(self, constituents: list[Expr]) -> EvaluationResult:
        start_ms = self.clock.total_ms
        length = self.index.num_records
        words = max(1, -(-length // 64))
        stats = EvalStats()

        if self.strategy == "component-wise":
            answer = self._component_wise(constituents, length, stats)
        elif self.strategy == "scheduled":
            answer = self._query_wise(
                schedule_constituents(constituents), length, stats
            )
        else:
            answer = self._query_wise(constituents, length, stats)

        # A bare-leaf answer can be the pool-resident vector itself,
        # which may view read-only (store/mmap) memory — callers own
        # their results, so hand out a writable copy instead.  Pure
        # allocation traffic: no scans or operations to charge.
        if not answer.words.flags.writeable:
            answer = answer.copy()

        # Charge CPU for the bulk word operations and the final ORs.
        self.clock.charge_word_ops(stats.operations, words)
        return EvaluationResult(
            bitmap=self.index.restore_row_order(answer),
            stats=stats,
            simulated_ms=self.clock.total_ms - start_ms,
            strategy=self.strategy,
        )

    def evaluate_shared(
        self,
        constituents: list[Expr],
        cache: dict[Hashable, BitVector],
        stats: EvalStats,
    ) -> BitVector:
        """Evaluate one query's constituents against a shared leaf cache.

        The serving layer's shared-scan batches prefetch the union of a
        batch's leaf bitmaps once (through :attr:`pool`) and pass the
        same ``cache`` to every query in the batch, so each stored
        bitmap crosses the buffer pool at most once per batch.  Word
        operations are charged to the engine's clock as in
        :meth:`execute`.
        """
        length = self.index.num_records
        words = max(1, -(-length // 64))
        before = stats.operations
        results = [
            self._evaluate_expr(expr, length, stats, cache)
            for expr in constituents
        ]
        if len(results) > 1:
            stats.operations += len(results) - 1
        self.clock.charge_word_ops(stats.operations - before, words)
        if len(results) == 1:
            answer = results[0]
            if not answer.words.flags.writeable:
                answer = answer.copy()  # same ownership rule as execute()
        else:
            answer = or_all(results)
        return self.index.restore_row_order(answer)

    # ------------------------------------------------------------------

    def _evaluate_expr(
        self,
        expr: Expr,
        length: int,
        stats: EvalStats,
        cache: dict[Hashable, BitVector],
    ) -> BitVector:
        """Evaluate one constituent, fused or materializing.

        Both physical plans fetch leaves through :attr:`pool` in the
        same depth-first first-touch order against the same ``cache``
        and charge identical scans/operations, so the choice is
        invisible to the cost model — only wall-clock and allocation
        traffic differ.
        """
        if self.fused is True:
            return evaluate_fused(
                expr, self.pool.fetch, length, stats, cache,
                block_words=self.block_words,
            )
        if self.fused == "auto":
            if plan_physical(expr, length, self.block_words) == "fused":
                return evaluate_fused(
                    expr, self.pool.fetch, length, stats, cache,
                    block_words=self.block_words,
                )
            o = _obs.active()
            if o is not None:
                o.count("expr.fused.materialize_fallbacks", 1)
        return evaluate(expr, self.pool.fetch, length, stats, cache)

    def _component_wise(
        self, constituents: list[Expr], length: int, stats: EvalStats
    ) -> BitVector:
        """Fetch each distinct bitmap once, in component order."""
        cache: dict[Hashable, BitVector] = {}
        # Pre-fetch all leaves ordered by component so that each
        # component's bitmaps are read together (the paper's strategy
        # accesses each component once on behalf of all subqueries).
        keys = sorted(
            {key for expr in constituents for key in expr.leaf_keys()},
            key=lambda key: (key[0], repr(key[1])),
        )
        for key in keys:
            if key not in cache:
                cache[key] = self.pool.fetch(key)
                stats.scans += 1
                stats.fetched_keys.append(key)
        results = [
            self._evaluate_expr(expr, length, stats, cache)
            for expr in constituents
        ]
        if len(results) == 1:
            return results[0]
        stats.operations += len(results) - 1
        return or_all(results)

    def _query_wise(
        self, constituents: list[Expr], length: int, stats: EvalStats
    ) -> BitVector:
        """Evaluate one constituent at a time with no cross-sharing."""
        answer: BitVector | None = None
        for expr in constituents:
            cache: dict[Hashable, BitVector] = {}
            result = self._evaluate_expr(expr, length, stats, cache)
            if answer is None:
                # A bare-leaf constituent evaluates to the pool-resident
                # vector itself (read-only under a mapped store), so the
                # accumulator must be a private copy before |=.
                answer = result if len(constituents) == 1 else result.copy()
            else:
                answer |= result
                stats.operations += 1
        assert answer is not None
        return answer
