"""Saving, loading and validating bitmap indexes on disk.

An index directory contains one file per bitmap (written through a
:class:`~repro.storage.DirectoryStore`) plus a ``manifest.json`` with
the spec, record count and one record per bitmap file.  Slot keys are
scheme-specific (ints like ``3`` or tuples like ``("P", 2)``), so the
manifest stores them in a tagged JSON form.

Format v2 (the current writer) makes the directory crash-safe and
corruption-evident:

* every manifest entry records the blob's **byte length** and **CRC32**
  alongside its bit length, so :func:`load_index` and
  :func:`validate_index` can distinguish a missing file
  (:class:`~repro.errors.MissingBlobError`), a torn/short blob
  (:class:`~repro.errors.TruncatedBlobError`), bit rot
  (:class:`~repro.errors.ChecksumMismatchError`) and
  manifest/blob disagreement
  (:class:`~repro.errors.ManifestMismatchError`);
* blobs and the manifest are written atomically
  (temp → fsync → rename, see
  :func:`repro.storage.atomic_write_bytes`), and the manifest is
  renamed into place *last*, so a crash at any point leaves the
  previous index state referenced by the previous manifest;
* blob files are named after their key
  (:func:`repro.storage.stable_blob_name`), never a counter, so a
  writer restarted over a non-empty directory cannot hand a new key a
  file belonging to a different key;
* stale blobs from a previous, larger index are removed only *after*
  the new manifest is committed.

Format v1 directories (no checksums, counter-derived names) are still
readable; saving always writes v2.  See ``docs/persistence.md``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs as _obs
from repro.compress import get_codec
from repro.compress.adaptive import payload_codec_name
from repro.errors import (
    ChecksumMismatchError,
    CodecError,
    ManifestMismatchError,
    MissingBlobError,
    StorageError,
    TruncatedBlobError,
)
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.encoding import get_scheme
from repro.storage import DirectoryStore, MappedDirectoryStore, atomic_write_bytes
from repro.storage import faults as _faults
from repro.storage.store import BLOB_SUFFIX, TMP_SUFFIX

MANIFEST_NAME = "manifest.json"
#: Format written by :func:`save_index`.
FORMAT_VERSION = 2
#: Formats :func:`load_index` can read.
SUPPORTED_FORMATS = (1, 2)
#: Blob holding the build-time row permutation of a reordered index
#: (little-endian int64 positions; see :mod:`repro.table.reorder`).
#: The ``.perm`` suffix keeps it clear of the ``.bm`` stale-blob sweep.
PERMUTATION_NAME = "permutation.perm"
#: Version of the manifest's optional ``reorder`` entry.  Manifests
#: without the entry — every index written before reordering existed —
#: load as identity, so the format number did not need to change.
REORDER_FORMAT = 1


def _encode_slot(slot) -> list | int | str:
    """JSON-safe encoding of a scheme slot key."""
    if isinstance(slot, int):
        return slot
    if isinstance(slot, str):
        return slot
    if isinstance(slot, tuple):
        return ["tuple", *[_encode_slot(part) for part in slot]]
    raise StorageError(f"unsupported slot key {slot!r}")


def _decode_slot(data):
    if isinstance(data, list):
        if not data or data[0] != "tuple":
            raise StorageError(f"malformed slot key {data!r}")
        return tuple(_decode_slot(part) for part in data[1:])
    return data


def _crc32(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def _count(name: str, amount: float = 1.0, **tags) -> None:
    o = _obs.active()
    if o is not None:
        o.count(name, amount, **tags)


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------


def save_index(index: BitmapIndex, directory: str | Path) -> Path:
    """Write ``index`` to ``directory``; returns the manifest path.

    The index's encoded payloads are copied byte-identically into the
    directory; an existing index there is replaced atomically — the new
    ``manifest.json`` is renamed into place only after every blob is
    durably written, and blobs the new index no longer references are
    unlinked only after that commit point.
    """
    directory = Path(directory)
    disk_store = DirectoryStore(
        directory, codec=index.store.codec, page_size=index.store.page_size
    )
    store_codec = index.store.codec.name
    entries = []
    for key in index.store.keys():
        component, slot = key
        payload, length = index.store.get_payload(key)
        disk_store.put_payload(key, payload, length)
        entries.append(
            {
                "component": component,
                "slot": _encode_slot(slot),
                "file": disk_store.path_for(key).name,
                "length": length,
                "bytes": len(payload),
                "crc32": _crc32(payload),
                # The concrete codec of this blob: for an 'auto' store
                # the inner codec the selector picked (also recorded in
                # the blob's tag byte, cross-checked on load); otherwise
                # simply the store codec.
                "codec": payload_codec_name(payload)
                if store_codec == "auto"
                else store_codec,
            }
        )
        _count("persist.blobs_written")
        _count("persist.bytes_written", len(payload))
    manifest = {
        "format": FORMAT_VERSION,
        "cardinality": index.cardinality,
        "scheme": index.spec.scheme,
        "bases": list(index.bases),
        "codec": index.store.codec.name,
        "page_size": index.store.page_size,
        "num_records": index.num_records,
        "bitmaps": entries,
    }
    reordering = getattr(index, "reordering", None)
    if reordering is not None:
        payload = reordering.permutation.astype("<i8").tobytes()
        atomic_write_bytes(directory / PERMUTATION_NAME, payload)
        manifest["reorder"] = {
            "version": REORDER_FORMAT,
            "strategy": reordering.strategy,
            "num_sorted": int(reordering.num_sorted),
            "file": PERMUTATION_NAME,
            "bytes": len(payload),
            "crc32": _crc32(payload),
        }
        _count("persist.blobs_written")
        _count("persist.bytes_written", len(payload))
    manifest_path = directory / MANIFEST_NAME
    atomic_write_bytes(
        manifest_path, (json.dumps(manifest, indent=2) + "\n").encode()
    )
    _sweep_unreferenced(directory, {entry["file"] for entry in entries})
    if reordering is None:
        # A previous index in this directory may have been reordered;
        # its permutation is unreferenced by the committed manifest.
        (directory / PERMUTATION_NAME).unlink(missing_ok=True)
    return manifest_path


def _sweep_unreferenced(directory: Path, referenced: set[str]) -> None:
    """Unlink blobs the committed manifest does not reference, plus any
    leftover temp files from interrupted writes."""
    for path in sorted(directory.iterdir()):
        stale_blob = path.suffix == BLOB_SUFFIX and path.name not in referenced
        stray_tmp = path.name.endswith(TMP_SUFFIX)
        if not (stale_blob or stray_tmp):
            continue
        _faults.step("unlink", path.name, path=path)
        path.unlink(missing_ok=True)
        if stale_blob:
            _count("persist.stale_blobs_removed")


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise MissingBlobError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"corrupt manifest in {directory}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"corrupt manifest in {directory}: not a JSON object"
        )
    if manifest.get("format") not in SUPPORTED_FORMATS:
        raise StorageError(
            f"unsupported index format {manifest.get('format')!r} "
            f"(supported: {SUPPORTED_FORMATS})"
        )
    return manifest


def _blob_path(directory: Path, entry: dict, key) -> Path:
    """Resolve a manifest ``file`` entry, rejecting directory escapes."""
    name = entry.get("file")
    if (
        not isinstance(name, str)
        or not name
        or name != Path(name).name
        or name in (".", "..")
    ):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"bitmap {key!r}: manifest file entry {name!r} is not a plain "
            f"file name inside the index directory"
        )
    return directory / name


def _read_blob(path: Path, key) -> bytes:
    try:
        return path.read_bytes()
    except FileNotFoundError:
        _count("persist.corruption_detected", kind="missing")
        raise MissingBlobError(
            f"bitmap {key!r}: file {path.name} is missing from {path.parent}"
        ) from None
    except OSError as exc:
        _count("persist.corruption_detected", kind="unreadable")
        raise MissingBlobError(
            f"bitmap {key!r}: file {path.name} is unreadable: {exc}"
        ) from exc


def _check_blob(payload: bytes, entry: dict, key) -> None:
    """Verify a v2 payload against its manifest record."""
    expected_bytes = entry.get("bytes")
    expected_crc = entry.get("crc32")
    if not isinstance(expected_bytes, int) or not isinstance(expected_crc, int):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"bitmap {key!r}: v2 manifest entry lacks integer 'bytes'/"
            f"'crc32' fields (got {expected_bytes!r}, {expected_crc!r})"
        )
    if len(payload) < expected_bytes:
        _count("persist.corruption_detected", kind="truncated")
        raise TruncatedBlobError(
            f"bitmap {key!r}: file {entry['file']} holds {len(payload)} "
            f"bytes, manifest records {expected_bytes}"
        )
    if len(payload) > expected_bytes:
        _count("persist.corruption_detected", kind="mismatch")
        raise ManifestMismatchError(
            f"bitmap {key!r}: file {entry['file']} holds {len(payload)} "
            f"bytes, longer than the {expected_bytes} the manifest records"
        )
    actual_crc = _crc32(payload)
    if actual_crc != expected_crc:
        _count("persist.corruption_detected", kind="checksum")
        raise ChecksumMismatchError(
            f"bitmap {key!r}: file {entry['file']} CRC32 {actual_crc:#010x} "
            f"does not match manifest {expected_crc:#010x}"
        )


def _check_entry_codec(entry: dict, store_codec: str, key, head) -> None:
    """Cross-check the manifest's per-bitmap ``codec`` field.

    Manifests written since the adaptive codec record which concrete
    codec each blob uses (for an ``auto`` store, the *inner* codec the
    selector picked).  The field must agree with the payload: an auto
    blob's first byte is its codec tag, and every other store's blobs
    are simply the store codec.  Manifests without the field (older
    writers) skip the check.  ``head`` is the payload, or just its
    first byte — only the tag is examined.
    """
    declared = entry.get("codec")
    if declared is None:
        return
    if not isinstance(declared, str):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"bitmap {key!r}: manifest 'codec' field {declared!r} is not a "
            f"codec name"
        )
    if store_codec != "auto":
        if declared != store_codec:
            _count("persist.corruption_detected", kind="mismatch")
            raise ManifestMismatchError(
                f"bitmap {key!r}: manifest records codec {declared!r} but "
                f"the index codec is {store_codec!r}"
            )
        return
    try:
        actual = payload_codec_name(head)
    except CodecError as exc:
        _count("persist.corruption_detected", kind="mismatch")
        raise ManifestMismatchError(
            f"bitmap {key!r}: auto payload codec tag is unreadable: {exc}"
        ) from exc
    if actual != declared:
        _count("persist.corruption_detected", kind="mismatch")
        raise ManifestMismatchError(
            f"bitmap {key!r}: manifest records inner codec {declared!r} but "
            f"the blob is tagged {actual!r}"
        )


def _read_head(path: Path) -> bytes:
    """First byte of a blob (the auto codec tag) without reading it all."""
    with open(path, "rb") as fh:
        return fh.read(1)


#: Exception type → ``persist.corruption_detected`` tag, for errors the
#: mapped attach path raises (mirrors the kinds ``_check_blob`` counts).
_CORRUPTION_KINDS = (
    (TruncatedBlobError, "truncated"),
    (ChecksumMismatchError, "checksum"),
    (MissingBlobError, "missing"),
    (ManifestMismatchError, "mismatch"),
)


def _attach_mapped_entry(
    store: MappedDirectoryStore, path: Path, entry: dict, key
) -> None:
    """Map-and-verify one v2 entry, with the copying loader's counters."""
    expected_bytes = entry.get("bytes")
    expected_crc = entry.get("crc32")
    if not isinstance(expected_bytes, int) or not isinstance(expected_crc, int):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"bitmap {key!r}: v2 manifest entry lacks integer 'bytes'/"
            f"'crc32' fields (got {expected_bytes!r}, {expected_crc!r})"
        )
    try:
        store.attach_mapped(
            key,
            entry["length"],
            path=path,
            expected_bytes=expected_bytes,
            expected_crc=expected_crc,
        )
    except StorageError as exc:
        for exc_type, kind in _CORRUPTION_KINDS:
            if isinstance(exc, exc_type):
                _count("persist.corruption_detected", kind=kind)
                break
        raise


def _load_entries(directory: Path, manifest: dict, store: DirectoryStore) -> None:
    fmt = manifest["format"]
    mapped = isinstance(store, MappedDirectoryStore)
    for entry in manifest["bitmaps"]:
        try:
            key = (entry["component"], _decode_slot(entry["slot"]))
        except (KeyError, TypeError) as exc:
            _count("persist.corruption_detected", kind="manifest")
            raise ManifestMismatchError(
                f"malformed manifest bitmap entry {entry!r}: {exc}"
            ) from exc
        path = _blob_path(directory, entry, key)
        if fmt >= 2 and mapped:
            # Attach first (it verifies existence, length and CRC with
            # the right typed errors), then cross-check the codec tag —
            # one byte read, the mapping itself stays untouched.
            _attach_mapped_entry(store, path, entry, key)
            _check_entry_codec(entry, store.codec.name, key, _read_head(path))
            continue
        payload = _read_blob(path, key)
        if fmt >= 2:
            _check_blob(payload, entry, key)
            _check_entry_codec(entry, store.codec.name, key, payload)
            store.attach_payload(key, payload, entry["length"])
        else:
            # v1 recorded no checksums; eagerly decode so a corrupt
            # stream at least fails here rather than at query time.
            vector = store.codec.decode(payload, entry["length"])
            store.attach_payload(key, payload, len(vector))


def _load_reordering(directory: Path, manifest: dict):
    """The manifest's row reordering, or None (identity) when absent.

    The permutation blob is checked like any bitmap blob — byte length
    and CRC32 against the manifest — and then validated as a true
    bijection over the record count: a corrupt permutation would
    silently misattribute every query answer, the worst possible
    failure mode for a checksummed format.
    """
    import numpy as np

    from repro.errors import ReproError
    from repro.table.reorder import RowReordering

    entry = manifest.get("reorder")
    if entry is None:
        return None
    key = "reorder"
    if not isinstance(entry, dict):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"reorder entry is not an object: {entry!r}"
        )
    num_sorted = entry.get("num_sorted")
    if not isinstance(num_sorted, int):
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"reorder entry lacks integer 'num_sorted' (got {num_sorted!r})"
        )
    path = _blob_path(directory, entry, key)
    payload = _read_blob(path, key)
    _check_blob(payload, entry, key)
    if len(payload) % 8:
        _count("persist.corruption_detected", kind="mismatch")
        raise ManifestMismatchError(
            f"reorder permutation in {path.name} holds {len(payload)} "
            f"bytes, not a whole number of int64 entries"
        )
    permutation = np.frombuffer(payload, dtype="<i8")
    try:
        return RowReordering.validated(
            permutation,
            num_sorted,
            str(entry.get("strategy", "lexicographic")),
            manifest["num_records"],
        )
    except ReproError as exc:
        _count("persist.corruption_detected", kind="mismatch")
        raise ManifestMismatchError(
            f"reorder permutation in {path.name} is invalid: {exc}"
        ) from exc


def load_index(directory: str | Path, mapped: bool = False) -> BitmapIndex:
    """Load an index previously written by :func:`save_index`.

    Reads are verify-on-load for v2 directories: every blob's byte
    length and CRC32 are checked against the manifest, and any
    disagreement raises a typed :class:`~repro.errors.StorageError`
    subclass naming the offending key.  Loading never writes to the
    directory.

    With ``mapped=True`` a v2 directory is served through a
    :class:`~repro.storage.MappedDirectoryStore`: each blob is verified
    against the manifest and then memory-mapped read-only, so the OS
    page cache is the only copy of the encoded index and query-time
    payload reads are zero-copy views.  v1 directories have no
    checksums to verify mappings against, so they silently fall back to
    the copying loader.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    try:
        store_cls = (
            MappedDirectoryStore
            if mapped and manifest["format"] >= 2
            else DirectoryStore
        )
        store = store_cls(
            directory,
            codec=manifest["codec"],
            page_size=manifest["page_size"],
        )
        num_records = manifest["num_records"]
        _load_entries(directory, manifest, store)
        reordering = _load_reordering(directory, manifest)
        spec = IndexSpec(
            cardinality=manifest["cardinality"],
            scheme=manifest["scheme"],
            bases=tuple(manifest["bases"]),
            codec=manifest["codec"],
            reorder="none" if reordering is None else reordering.strategy,
        )
        scheme = get_scheme(manifest["scheme"])
        bases = tuple(manifest["bases"])
    except (KeyError, TypeError, ValueError) as exc:
        _count("persist.corruption_detected", kind="manifest")
        raise ManifestMismatchError(
            f"manifest in {directory} is malformed: {exc!r}"
        ) from exc
    return BitmapIndex(
        spec=spec,
        store=store,
        num_records=num_records,
        scheme=scheme,
        bases=bases,
        reordering=reordering,
    )


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


@dataclass
class IndexValidationReport:
    """Outcome of :func:`validate_index` over one index directory."""

    directory: Path
    #: Manifest format version found.
    format: int
    #: Number of manifest bitmap entries examined.
    checked: int = 0
    #: Typed errors, one per corrupt/missing/disagreeing bitmap entry.
    errors: list[StorageError] = field(default_factory=list)
    #: ``.bm`` files present but unreferenced, and leftover ``.tmp``
    #: files — junk from an interrupted writer, harmless but removable.
    orphans: list[str] = field(default_factory=list)
    #: Valid bitmaps per concrete codec.  For an ``auto`` index this is
    #: the selector's per-bitmap choices; for a fixed-codec index every
    #: bitmap lands under the store codec.
    codec_counts: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every referenced bitmap checks out (orphans are
        junk, not corruption)."""
        return not self.errors

    def summary(self) -> str:
        verdict = "ok" if self.ok else "CORRUPT"
        line = (
            f"{verdict}: {self.checked} bitmaps checked, "
            f"{len(self.errors)} errors, {len(self.orphans)} orphan files "
            f"(format v{self.format})"
        )
        if self.codec_counts:
            counts = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.codec_counts.items())
            )
            line += f"; codecs: {counts}"
        return line


def validate_index(directory: str | Path) -> IndexValidationReport:
    """Check every bitmap the manifest references against the directory.

    Unlike :func:`load_index`, which stops at the first problem, this
    examines *every* entry — existence, byte length, CRC32 and codec
    decodability — and returns a report carrying the same typed
    :class:`~repro.errors.StorageError` instances loading would raise.
    An unreadable or unsupported manifest still raises, since nothing
    can be checked without one.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    report = IndexValidationReport(directory, format=manifest["format"])
    referenced: set[str] = set()
    for entry in manifest.get("bitmaps", []):
        report.checked += 1
        try:
            key = (entry["component"], _decode_slot(entry["slot"]))
        except (KeyError, TypeError, StorageError):
            key = entry.get("slot", "?")
        try:
            try:
                path = _blob_path(directory, entry, key)
                referenced.add(path.name)
                payload = _read_blob(path, key)
                if manifest["format"] >= 2:
                    _check_blob(payload, entry, key)
                    _check_entry_codec(entry, manifest["codec"], key, payload)
                codec = get_codec(manifest["codec"])
                codec.decode(payload, entry["length"])
                concrete = entry.get("codec")
                if concrete is None:
                    concrete = (
                        payload_codec_name(payload)
                        if manifest["codec"] == "auto"
                        else manifest["codec"]
                    )
                report.codec_counts[concrete] = (
                    report.codec_counts.get(concrete, 0) + 1
                )
            except StorageError:
                raise
            except Exception as exc:
                _count("persist.corruption_detected", kind="undecodable")
                raise ManifestMismatchError(
                    f"bitmap {key!r}: file {entry.get('file')} does not "
                    f"validate as {manifest['codec']!r}: {exc!r}"
                ) from exc
        except StorageError as exc:
            report.errors.append(exc)
    if manifest.get("reorder") is not None:
        report.checked += 1
        try:
            _load_reordering(directory, manifest)
        except StorageError as exc:
            report.errors.append(exc)
        else:
            referenced.add(manifest["reorder"].get("file", PERMUTATION_NAME))
    for path in sorted(directory.iterdir()):
        if path.suffix == BLOB_SUFFIX and path.name not in referenced:
            report.orphans.append(path.name)
        elif path.suffix == ".perm" and path.name not in referenced:
            report.orphans.append(path.name)
        elif path.name.endswith(TMP_SUFFIX):
            report.orphans.append(path.name)
    _count("persist.validations")
    if report.errors:
        _count("persist.validation_errors", len(report.errors))
    return report
