"""Saving and loading bitmap indexes on disk.

An index directory contains one file per bitmap (written through a
:class:`~repro.storage.DirectoryStore`) plus a ``manifest.json`` with
the spec, record count and the key of every bitmap file.  Slot keys are
scheme-specific (ints like ``3`` or tuples like ``("P", 2)``), so the
manifest stores them in a tagged JSON form.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import StorageError
from repro.index.bitmap_index import BitmapIndex, IndexSpec
from repro.encoding import get_scheme
from repro.storage import DirectoryStore

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def _encode_slot(slot) -> list | int | str:
    """JSON-safe encoding of a scheme slot key."""
    if isinstance(slot, int):
        return slot
    if isinstance(slot, str):
        return slot
    if isinstance(slot, tuple):
        return ["tuple", *[_encode_slot(part) for part in slot]]
    raise StorageError(f"unsupported slot key {slot!r}")


def _decode_slot(data):
    if isinstance(data, list):
        if not data or data[0] != "tuple":
            raise StorageError(f"malformed slot key {data!r}")
        return tuple(_decode_slot(part) for part in data[1:])
    return data


def save_index(index: BitmapIndex, directory: str | Path) -> Path:
    """Write ``index`` to ``directory``; returns the manifest path.

    The index's bitmaps are re-encoded with its own codec into the
    directory; an existing manifest is overwritten.
    """
    directory = Path(directory)
    disk_store = DirectoryStore(
        directory, codec=index.store.codec, page_size=index.store.page_size
    )
    entries = []
    for key in index.store.keys():
        component, slot = key
        disk_store.put(key, index.store.get(key))
        entries.append(
            {
                "component": component,
                "slot": _encode_slot(slot),
                "file": disk_store.path_for(key).name,
                "length": index.num_records,
            }
        )
    manifest = {
        "format": FORMAT_VERSION,
        "cardinality": index.cardinality,
        "scheme": index.spec.scheme,
        "bases": list(index.bases),
        "codec": index.store.codec.name,
        "page_size": index.store.page_size,
        "num_records": index.num_records,
        "bitmaps": entries,
    }
    manifest_path = directory / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2))
    return manifest_path


def load_index(directory: str | Path) -> BitmapIndex:
    """Load an index previously written by :func:`save_index`."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise StorageError(f"no {MANIFEST_NAME} in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt manifest in {directory}: {exc}") from exc
    if manifest.get("format") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported index format {manifest.get('format')!r}"
        )

    store = DirectoryStore(
        directory,
        codec=manifest["codec"],
        page_size=manifest["page_size"],
    )
    num_records = manifest["num_records"]
    # Read every payload before any put: puts assign fresh file names
    # and may overwrite a file a later entry still needs.
    payloads = [
        (
            (entry["component"], _decode_slot(entry["slot"])),
            (directory / entry["file"]).read_bytes(),
            entry["length"],
        )
        for entry in manifest["bitmaps"]
    ]
    for key, payload, length in payloads:
        store.put(key, store.codec.decode(payload, length))

    spec = IndexSpec(
        cardinality=manifest["cardinality"],
        scheme=manifest["scheme"],
        bases=tuple(manifest["bases"]),
        codec=manifest["codec"],
    )
    return BitmapIndex(
        spec=spec,
        store=store,
        num_records=num_records,
        scheme=get_scheme(manifest["scheme"]),
        bases=tuple(manifest["bases"]),
    )
