"""Counters, gauges and histograms behind one registry.

Metric identity is ``(name, tags)``: the same name with different tag
values (``codec="wah"`` vs ``codec="bbc"``) is a different time series,
exactly as in Prometheus-style systems.  Instruments are created on
first touch and kept forever — the registry is the single source of
truth that :meth:`MetricsRegistry.to_dict` exports.

All instruments are plain Python objects with no locking: the simulator
is single-threaded per process (parallel experiment workers each build
their own registry), and keeping increments to one attribute addition
is what keeps the instrumentation overhead under the bench gate.
"""

from __future__ import annotations

import json
import math
from collections.abc import Hashable

#: Default histogram bucket upper bounds (values are unitless; the
#: engine records milliseconds).  Geometric with ratio ~3.16 so two
#: buckets span a decade; an implicit +inf bucket catches the rest.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.00316, 0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 31.6,
    100.0, 316.0, 1000.0,
)

TagItems = tuple[tuple[str, str], ...]


def _tag_key(tags: dict[str, object]) -> TagItems:
    """Canonical hashable identity of a tag set."""
    if not tags:
        return ()
    return tuple(sorted((k, str(v)) for k, v in tags.items()))


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: TagItems):
        self.name = name
        self.tags = tags
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can move both ways (e.g. resident buffer pages)."""

    __slots__ = ("name", "tags", "value")

    def __init__(self, name: str, tags: TagItems):
        self.name = name
        self.tags = tags
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bucketed distribution with count/sum/min/max summary.

    Buckets hold counts of observations ``<= bound``; observations above
    the last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "tags", "bounds", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(
        self,
        name: str,
        tags: TagItems,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.tags = tags
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation inside the bucket containing the target
        rank, Prometheus ``histogram_quantile`` style, clamped to the
        observed ``[min, max]`` so estimates never leave the data range
        (observations in the overflow bucket resolve to ``max``).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            if cumulative + n >= target:
                if i == len(self.bounds):  # overflow bucket
                    return self.max
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                fraction = (target - cumulative) / n
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    def summary_quantiles(self) -> dict[str, float]:
        """The p50/p95/p99 summary exported by :meth:`to_dict`."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        out = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out.update(self.summary_quantiles())
        # Only ship non-empty buckets; exports stay readable.
        out["buckets"] = {
            ("+inf" if i == len(self.bounds) else str(self.bounds[i])): n
            for i, n in enumerate(self.bucket_counts)
            if n
        }
        return out


class MetricsRegistry:
    """Lazily-created instruments addressed by ``(name, tags)``."""

    def __init__(self):
        self._instruments: dict[tuple[str, TagItems], object] = {}

    def _get(self, cls, name: str, tags: dict, **kwargs):
        key = (name, _tag_key(tags))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, /, **tags: object) -> Counter:
        """The counter for ``(name, tags)``, created on first use."""
        return self._get(Counter, name, tags)

    def gauge(self, name: str, /, **tags: object) -> Gauge:
        """The gauge for ``(name, tags)``, created on first use."""
        return self._get(Gauge, name, tags)

    def histogram(
        self,
        name: str,
        /,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **tags: object,
    ) -> Histogram:
        """The histogram for ``(name, tags)``, created on first use."""
        return self._get(Histogram, name, tags, bounds=bounds)

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self):
        """All instruments, in creation order."""
        return list(self._instruments.values())

    def find(self, name: str, /, **tags: object):
        """The instrument under ``(name, tags)``, or None."""
        return self._instruments.get((name, _tag_key(tags)))

    def total(self, name: str) -> float:
        """Sum of every counter series sharing ``name`` (all tag sets)."""
        return sum(
            inst.value
            for (metric_name, _), inst in self._instruments.items()
            if metric_name == name and isinstance(inst, Counter)
        )

    def to_dict(self) -> dict:
        """Nested export: ``{name: {tag_repr: instrument_dict}}``."""
        out: dict[str, dict] = {}
        for (name, tags), instrument in sorted(
            self._instruments.items(), key=lambda item: item[0]
        ):
            tag_repr = ",".join(f"{k}={v}" for k, v in tags) or "_"
            out.setdefault(name, {})[tag_repr] = instrument.to_dict()
        return out

    def export_json(self, indent: int | None = 2) -> str:
        """The registry as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
