"""Nestable spans capturing per-query timelines.

A span is one timed region (a query, an experiment, one figure data
point); spans nest, forming a tree per top-level region.  While a span
is open, every charge the instrumented stack reports through
:meth:`Tracer.attribute` is added to the *innermost* open span — that
is how a page read deep inside the buffer pool ends up attributed to
the query that caused it.  Parents aggregate their children on close,
so a figure-level span shows the total I/O of every query under it.

The tracer keeps only the most recent ``max_roots`` completed root
spans (default 1000) so long experiment sweeps cannot grow memory
without bound.
"""

from __future__ import annotations

import time
from collections import deque


class Span:
    """One timed, tagged region of work."""

    __slots__ = ("name", "tags", "start_s", "duration_s", "metrics",
                 "children", "_open")

    def __init__(self, name: str, tags: dict[str, object]):
        self.name = name
        self.tags = {k: str(v) for k, v in tags.items()}
        self.start_s = time.perf_counter()
        self.duration_s: float | None = None
        #: Counter deltas attributed while this span was innermost,
        #: plus (on close) the aggregated deltas of its children.
        self.metrics: dict[str, float] = {}
        self.children: list["Span"] = []
        self._open = True

    def attribute(self, name: str, amount: float) -> None:
        """Add ``amount`` to this span's ``name`` tally."""
        self.metrics[name] = self.metrics.get(name, 0.0) + amount

    def close(self) -> None:
        """End the span and roll children's metrics up into it."""
        if not self._open:
            return
        self.duration_s = time.perf_counter() - self.start_s
        for child in self.children:
            for key, amount in child.metrics.items():
                self.metrics[key] = self.metrics.get(key, 0.0) + amount
        self._open = False

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.tags:
            out["tags"] = dict(self.tags)
        out["duration_ms"] = (
            None if self.duration_s is None else self.duration_s * 1e3
        )
        if self.metrics:
            out["metrics"] = {k: self.metrics[k] for k in sorted(self.metrics)}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        state = "open" if self._open else f"{self.duration_s * 1e3:.3f}ms"
        return f"Span({self.name!r}, {state})"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Owns the span stack and the retained span trees."""

    def __init__(self, max_roots: int = 1000):
        self._stack: list[Span] = []
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self.dropped_roots = 0

    def span(self, name: str, /, **tags: object) -> _SpanContext:
        """Open a span; use as ``with tracer.span("query", scheme="E"):``."""
        span = Span(name, tags)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            if len(self._roots) == self._roots.maxlen:
                self.dropped_roots += 1
            self._roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _pop(self, span: Span) -> None:
        span.close()
        # Close any forgotten inner spans too (defensive: an exception
        # raised between sibling spans must not corrupt the stack).
        while self._stack:
            top = self._stack.pop()
            top.close()
            if top is span:
                break

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def attribute(self, name: str, amount: float) -> None:
        """Add a charge to the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].attribute(name, amount)

    def roots(self) -> list[Span]:
        """Completed (and still-open) root spans, oldest first."""
        return list(self._roots)

    def last(self, name: str | None = None) -> Span | None:
        """Most recent root span, optionally filtered by name."""
        for span in reversed(self._roots):
            if name is None or span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        out: dict = {"spans": [span.to_dict() for span in self._roots]}
        if self.dropped_roots:
            out["dropped_roots"] = self.dropped_roots
        return out
