"""Unified observability: metrics + tracing for the whole stack.

The paper's evaluation is an exercise in counting — pages read, words
ANDed, bytes decompressed.  This package gives those counts one
surface.  An :class:`Observability` object bundles a
:class:`~repro.obs.metrics.MetricsRegistry` (counters / gauges /
histograms keyed by name + tags) with a :class:`~repro.obs.trace.Tracer`
(nestable spans capturing per-query timelines), and the instrumented
layers — :class:`~repro.storage.BufferPool`,
:class:`~repro.storage.CostClock`, every codec's encode/decode, both
query engines, and the experiment runners — report into whichever
instance is currently *installed*.

Nothing is recorded unless an instance is installed: the hot paths
guard on :func:`active` returning None, which keeps the disabled
overhead to one global read per call (the ``bench_regression`` gate
holds the *enabled* overhead under 5% on the kernel benches too).

Typical use::

    from repro import obs

    with obs.observed() as o:
        index.query(q)
    print(o.export_json())

or imperatively via :func:`install` / :func:`uninstall` (the CLI's
``--trace`` flag does exactly this).  See ``docs/observability.md`` for
the metric-name catalog and the export format.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "active",
    "install",
    "uninstall",
    "observed",
]


class Observability:
    """One metrics registry plus one tracer, exported together."""

    def __init__(self, max_roots: int = 1000):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(max_roots=max_roots)

    # -- recording ---------------------------------------------------------

    def span(self, name: str, /, **tags: object):
        """Open a nested span (context manager yielding the Span)."""
        return self.tracer.span(name, **tags)

    def count(self, name: str, amount: float = 1.0, /, **tags: object) -> None:
        """Increment counter ``(name, tags)`` and attribute ``amount``
        to the innermost open span under the plain ``name``."""
        self.metrics.counter(name, **tags).inc(amount)
        self.tracer.attribute(name, amount)

    def observe(self, name: str, value: float, /, **tags: object) -> None:
        """Record ``value`` into histogram ``(name, tags)``."""
        self.metrics.histogram(name, **tags).observe(value)

    def gauge_set(self, name: str, value: float, /, **tags: object) -> None:
        """Set gauge ``(name, tags)`` to ``value``."""
        self.metrics.gauge(name, **tags).set(value)

    # -- reading -----------------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` across every tag set."""
        return self.metrics.total(name)

    def last_span(self, name: str | None = None) -> Span | None:
        """Most recent completed root span (optionally by name)."""
        return self.tracer.last(name)

    def export(self) -> dict:
        """The full state as a JSON-serializable dict."""
        return {"metrics": self.metrics.to_dict(), "trace": self.tracer.to_dict()}

    def export_json(self, indent: int | None = 2) -> str:
        """The full state as a JSON document."""
        return json.dumps(self.export(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Process-wide installation
# ---------------------------------------------------------------------------

_ACTIVE: Observability | None = None


def active() -> Observability | None:
    """The installed instance, or None when observability is off."""
    return _ACTIVE


def install(obs: Observability | None = None) -> Observability:
    """Install ``obs`` (or a fresh instance) as the process-wide sink."""
    global _ACTIVE
    _ACTIVE = obs if obs is not None else Observability()
    return _ACTIVE


def uninstall() -> None:
    """Turn observability off (the previous instance keeps its data)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def observed(obs: Observability | None = None):
    """Install a (fresh) instance for the duration of a ``with`` block.

    The previously installed instance, if any, is restored on exit, so
    ``observed()`` blocks nest safely.
    """
    global _ACTIVE
    previous = _ACTIVE
    current = obs if obs is not None else Observability()
    _ACTIVE = current
    try:
        yield current
    finally:
        _ACTIVE = previous
