"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``   write a synthetic Zipf column to a ``.npy`` file
``build``      build a bitmap index over a column and save it to a directory
``info``       print a saved index's layout and space statistics
``query``      run an interval, membership, or k-of-N threshold query
``append``     append a batch of records from a column file to a saved index
``verify-index``  check a saved index for corruption (checksums, lengths)
``experiment`` regenerate one of the paper's tables/figures
``advise``     sweep the design space for a column and recommend a design
``serve-bench``  drive the concurrent serving layer and compare
               shared-scan batching against serial execution; with
               ``--shards N`` it drives the sharded multi-process tier
               (scatter-gather routing, ``--transport inline|process``)

Every command is deterministic given its ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import obs
from repro.encoding import ALL_SCHEME_NAMES
from repro.errors import QueryError, ReproError
from repro.index import BitmapIndex, IndexSpec
from repro.index.persist import load_index, save_index, validate_index
from repro.queries import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.table.reorder import REORDER_STRATEGIES
from repro.workload import zipf_column


def _workers_arg(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU), got {value}"
        )
    return value


def _load_column(path: str) -> np.ndarray:
    """Load an integer column from .npy or a one-value-per-line text file."""
    file = Path(path)
    if not file.exists():
        raise ReproError(f"column file not found: {path}")
    if file.suffix == ".npy":
        return np.load(file)
    return np.loadtxt(file, dtype=np.int64, ndmin=1)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.generator == "markov":
        from repro.workload import markov_column

        values = markov_column(
            args.num_records,
            args.cardinality,
            clustering_factor=args.clustering,
            skew=args.skew,
            seed=args.seed,
        )
        shape = f"C={args.cardinality}, z={args.skew:g}, f={args.clustering:g}"
    else:
        values = zipf_column(
            args.num_records, args.cardinality, args.skew, seed=args.seed
        )
        shape = f"C={args.cardinality}, z={args.skew:g}"
    np.save(args.output, values)
    print(f"wrote {values.size} values ({shape}) to {args.output}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    values = _load_column(args.column)
    cardinality = args.cardinality or int(values.max()) + 1
    spec = IndexSpec(
        cardinality=cardinality,
        scheme=args.scheme,
        num_components=args.components,
        codec=args.codec,
        reorder=args.reorder,
    )
    index = BitmapIndex.build(values, spec)
    save_index(index, args.output)
    print(
        f"built {index!r}: {index.size_bytes() / 1024:.1f} KB in "
        f"{args.output}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    print(f"design:       {index.spec.label}")
    print(f"cardinality:  {index.cardinality}")
    print(f"components:   {index.num_components} (bases "
          f"<{','.join(map(str, index.bases))}>)")
    print(f"records:      {index.num_records}")
    if index.reordering is not None:
        print(
            f"reorder:      {index.reordering.strategy} "
            f"({index.reordering.num_sorted} sorted, "
            f"{index.num_records - index.reordering.num_sorted} appended)"
        )
    print(f"bitmaps:      {index.num_bitmaps()}")
    print(f"stored size:  {index.size_bytes() / 1024:.1f} KB "
          f"({index.size_pages()} pages)")
    print(f"uncompressed: {index.uncompressed_bytes() / 1024:.1f} KB")
    return 0


def _parse_predicate(spec: str, cardinality: int):
    """One ``--predicates`` item: ``lo:hi`` interval or a single value."""
    if ":" in spec:
        low, high = spec.split(":", 1)
        return IntervalQuery(int(low), int(high), cardinality)
    return MembershipQuery.of({int(spec)}, cardinality)


def _parse_query(args: argparse.Namespace, cardinality: int):
    if getattr(args, "threshold_k", None) is not None:
        specs = args.predicates or args.values
        if not specs:
            raise QueryError(
                "--threshold-k needs --predicates (or --values) listing the "
                "N predicates to count"
            )
        predicates = [
            _parse_predicate(part.strip(), cardinality)
            for part in specs.split(",")
        ]
        return ThresholdQuery.of(args.threshold_k, predicates)
    if args.values:
        members = {int(v) for v in args.values.split(",")}
        return MembershipQuery.of(members, cardinality)
    low = args.low if args.low is not None else 0
    high = args.high if args.high is not None else cardinality - 1
    return IntervalQuery(low, high, cardinality)


def _cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index, mapped=args.mapped)
    query = _parse_query(args, index.cardinality)
    fused = {"auto": "auto", "on": True, "off": False}[args.fused]
    result = index.query(query, fused=fused)
    print(f"query:         {query}")
    print(f"matching rows: {result.row_count}")
    print(f"bitmap scans:  {result.stats.scans}")
    print(f"simulated ms:  {result.simulated_ms:.3f}")
    if args.show_rows:
        ids = result.row_ids()
        shown = ids[: args.show_rows]
        tail = "..." if ids.size > args.show_rows else ""
        print(f"row ids:       {' '.join(map(str, shown))}{tail}")
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    batch = _load_column(args.column)
    report = index.append(batch)
    save_index(index, args.index)
    print(
        f"appended {report.records_appended} records; "
        f"{report.bitmaps_touched}/{report.bitmaps_extended} bitmaps gained bits"
    )
    return 0


def _cmd_verify_index(args: argparse.Namespace) -> int:
    report = validate_index(args.index)
    print(f"index:   {args.index}")
    print(f"format:  v{report.format}")
    print(f"bitmaps: {report.checked} checked")
    for name, count in sorted(report.codec_counts.items()):
        print(f"codec:   {name} x{count}")
    for error in report.errors:
        print(f"ERROR [{type(error).__name__}] {error}")
    for orphan in report.orphans:
        print(f"orphan:  {orphan} (unreferenced; junk from an old or "
              f"interrupted writer)")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentConfig, run_all, run_experiment

    config = ExperimentConfig(
        num_records=args.num_records, workers=args.workers, codec=args.codec
    )
    if args.name == "all":
        for name, result in run_all(config).items():
            print(result.render())
            print()
    else:
        print(run_experiment(args.name, config).render())
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve import (
        QueryService,
        ServiceConfig,
        paper_mix,
        run_closed_loop,
        run_open_loop,
    )

    values = zipf_column(
        args.num_records, args.cardinality, args.skew, seed=args.seed
    )
    spec = IndexSpec(
        cardinality=args.cardinality,
        scheme=args.scheme,
        num_components=args.components,
        codec=args.codec,
    )
    queries = paper_mix(args.cardinality, args.num_queries, seed=args.seed)
    if args.shards > 0:
        return _serve_bench_sharded(args, values, spec, queries)
    index = BitmapIndex.build(values, spec)
    print(
        f"index:    {index!r}\n"
        f"workload: {len(queries)} queries (C={args.cardinality}, "
        f"z={args.skew:g}), concurrency {args.concurrency}, "
        f"buffer {args.buffer_pages} pages"
    )

    def make_service(max_batch: int, cache_entries: int) -> QueryService:
        return QueryService(
            index,
            ServiceConfig(
                workers=args.workers,
                max_batch=max_batch,
                max_queue=args.max_queue,
                buffer_pages=args.buffer_pages,
                cache_entries=cache_entries,
                engine=args.engine,
            ),
        )

    # Counted-pages comparison on the deterministic path.
    with make_service(1, 0) as serial:
        for query in queries:
            serial.execute_many([query])
        serial_pages = serial.clock.pages_read
    with make_service(args.concurrency, 0) as batched:
        for start in range(0, len(queries), args.concurrency):
            batched.execute_many(queries[start : start + args.concurrency])
        batched_pages = batched.clock.pages_read
    n = len(queries)
    print(f"serial:   {serial_pages / n:.2f} pages/query ({serial_pages})")
    print(
        f"batched:  {batched_pages / n:.2f} pages/query ({batched_pages}, "
        f"{100 * (1 - batched_pages / serial_pages):.1f}% fewer)"
    )

    cache_entries = 0 if args.no_cache else len(queries) + 1
    with make_service(args.concurrency, cache_entries) as service:
        if args.rate is not None:
            report = run_open_loop(
                service, queries, args.rate, timeout_s=args.timeout
            )
        else:
            report = run_closed_loop(
                service,
                queries,
                concurrency=args.concurrency,
                timeout_s=args.timeout,
            )
        print(report.render())
        if not args.no_cache:
            before = service.clock.pages_read
            repeat = run_closed_loop(
                service, queries, concurrency=args.concurrency
            )
            delta = service.clock.pages_read - before
            print(
                f"repeat mix:     {repeat.cache_hits} cache hits, "
                f"{delta} pages read"
            )
    return 0


def _serve_bench_sharded(args, values, spec, queries) -> int:
    from repro.serve import (
        ShardedConfig,
        ShardedQueryService,
        run_closed_loop,
        run_open_loop,
    )

    config = ShardedConfig(
        shards=args.shards,
        transport=args.transport,
        workers=args.workers,
        max_batch=args.concurrency,
        max_queue=args.max_queue,
        buffer_pages=args.buffer_pages,
        cache_entries=0 if args.no_cache else len(queries) + 1,
        engine=args.engine,
    )
    print(
        f"sharded:  {args.shards} shards ({args.transport} transport), "
        f"{len(values)} rows, spec {spec.label}\n"
        f"workload: {len(queries)} queries (C={args.cardinality}, "
        f"z={args.skew:g}), concurrency {args.concurrency}"
    )
    with ShardedQueryService(values, spec, config) as service:
        for info in service.shard_info():
            print(
                f"  shard {info['id']}: {info['num_records']} rows "
                f"(epoch {info['epoch']})"
            )
        if args.rate is not None:
            report = run_open_loop(
                service, queries, args.rate, timeout_s=args.timeout
            )
        else:
            report = run_closed_loop(
                service,
                queries,
                concurrency=args.concurrency,
                timeout_s=args.timeout,
            )
        print(report.render())
        if not args.no_cache:
            repeat = run_closed_loop(
                service, queries, concurrency=args.concurrency
            )
            print(
                f"repeat mix:     {repeat.cache_hits} cache hits "
                f"({repeat.throughput_qps:.0f} q/s)"
            )
    return 0


def _cmd_theorems(args: argparse.Namespace) -> int:
    from repro.analysis.theorems import all_theorem_checks

    for check in all_theorem_checks():
        verdict = {True: "VERIFIED", False: "REFUTED", None: "PAPER-PROVED"}[
            check.holds
        ]
        print(f"[{verdict:12s}] {check.statement}")
        print(f"               method: {check.method}")
        if args.verbose:
            for line in check.details:
                print(f"               {line}")
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.index import recommend
    from repro.queries import generate_query_set, paper_query_sets

    values = _load_column(args.column)
    cardinality = args.cardinality or int(values.max()) + 1
    workload = {
        spec.label: generate_query_set(spec, cardinality, 10, seed=args.seed)
        for spec in paper_query_sets()
    }
    outcome = recommend(
        values,
        cardinality,
        workload,
        space_budget_bytes=args.budget_kb * 1024 if args.budget_kb else None,
    )
    print(f"{'design':18s} {'space KB':>10s} {'avg ms':>10s}")
    for point in outcome.candidates:
        marker = " *" if point in outcome.frontier else ""
        print(
            f"{point.label:18s} {point.space_bytes / 1024:10.1f} "
            f"{point.avg_time_ms:10.2f}{marker}"
        )
    if outcome.best is not None:
        print(f"recommended: {outcome.best.label}")
    else:
        print("no design fits the budget")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Bitmap index toolkit reproducing Chan & Ioannidis, "
            "SIGMOD 1999"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every command that exercises the
    # instrumented stack (see docs/observability.md).
    traceable = argparse.ArgumentParser(add_help=False)
    traceable.add_argument(
        "--trace",
        action="store_true",
        help="record metrics + spans for this run and print the JSON "
        "export after the command output",
    )
    traceable.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="like --trace, but write the JSON export to PATH instead "
        "of printing it",
    )

    p = sub.add_parser("generate", help="generate a synthetic column")
    p.add_argument("output", help="output .npy path")
    p.add_argument("--num-records", type=int, default=100_000)
    p.add_argument("--cardinality", type=int, default=50)
    p.add_argument("--skew", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--generator",
        choices=("zipf", "markov"),
        default="zipf",
        help="zipf: independent draws (the paper's data sets); markov: "
        "clustered value runs (geometric, mean --clustering)",
    )
    p.add_argument(
        "--clustering",
        type=float,
        default=4.0,
        help="mean value-run length for --generator markov (>= 1)",
    )
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("build", help="build and save a bitmap index", parents=[traceable])
    p.add_argument("column", help=".npy or text column file")
    p.add_argument("output", help="index directory")
    p.add_argument("--scheme", choices=ALL_SCHEME_NAMES + ("I+",), default="I")
    p.add_argument("--components", type=int, default=1)
    p.add_argument("--codec", default="bbc")
    p.add_argument(
        "--cardinality",
        type=int,
        default=None,
        help="attribute cardinality (default: max value + 1)",
    )
    p.add_argument(
        "--reorder",
        choices=REORDER_STRATEGIES,
        default="none",
        help="sort rows at build time so run-length codecs compress "
        "better; query answers still report original row ids "
        "(see docs/reordering.md)",
    )
    p.set_defaults(func=_cmd_build)

    p = sub.add_parser("info", help="describe a saved index", parents=[traceable])
    p.add_argument("index", help="index directory")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("query", help="query a saved index", parents=[traceable])
    p.add_argument("index", help="index directory")
    p.add_argument("--low", type=int, default=None, help="interval lower bound")
    p.add_argument("--high", type=int, default=None, help="interval upper bound")
    p.add_argument(
        "--values", default=None, help="comma-separated membership values"
    )
    p.add_argument(
        "--threshold-k",
        type=int,
        default=None,
        help="k-of-N threshold query: match rows satisfying at least K of "
        "the --predicates (see docs/threshold.md)",
    )
    p.add_argument(
        "--predicates",
        default=None,
        help="comma-separated threshold predicates, each 'lo:hi' (interval) "
        "or a single value (membership), e.g. '0:3,7,12:15'",
    )
    p.add_argument(
        "--show-rows", type=int, default=0, help="print up to N matching row ids"
    )
    p.add_argument(
        "--mapped",
        action="store_true",
        help="serve payloads from read-only mmap views instead of heap "
        "copies (v2 index directories; see docs/zero_copy.md)",
    )
    p.add_argument(
        "--fused",
        choices=("auto", "on", "off"),
        default="auto",
        help="physical evaluation: fused block-at-a-time kernels, "
        "materializing, or per-constituent planning (default)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser("append", help="append a batch to a saved index", parents=[traceable])
    p.add_argument("index", help="index directory")
    p.add_argument("column", help=".npy or text column file with new records")
    p.set_defaults(func=_cmd_append)

    p = sub.add_parser(
        "verify-index",
        help="validate a saved index directory (checksums, byte lengths, "
        "orphans); exit 1 on any corruption",
        parents=[traceable],
    )
    p.add_argument("index", help="index directory")
    p.set_defaults(func=_cmd_verify_index)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure", parents=[traceable])
    p.add_argument(
        "name",
        choices=[
            "figure3",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "table1",
            "adaptive_sweep",
            "all",
        ],
    )
    p.add_argument("--num-records", type=int, default=50_000)
    p.add_argument(
        "--codec",
        default="bbc",
        help="codec for the compressed index variants (e.g. bbc, wah, "
        "ewah, roaring)",
    )
    p.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        help="processes for independent data points (1 = serial, 0 = one "
        "per CPU)",
    )
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "theorems", help="verify the paper's optimality theorems"
    )
    p.add_argument("--verbose", action="store_true", help="show per-C details")
    p.set_defaults(func=_cmd_theorems)

    p = sub.add_parser(
        "serve-bench",
        help="drive the concurrent serving layer: shared-scan batching vs "
        "serial pages/query, then a threaded closed- or open-loop replay",
        parents=[traceable],
    )
    p.add_argument("--num-records", type=int, default=20_000)
    p.add_argument("--num-queries", type=int, default=1000)
    p.add_argument("--cardinality", type=int, default=200)
    p.add_argument("--skew", type=float, default=1.0)
    p.add_argument("--scheme", choices=ALL_SCHEME_NAMES, default="E")
    p.add_argument("--components", type=int, default=1)
    p.add_argument("--codec", default="raw")
    p.add_argument(
        "--engine",
        choices=("decoded", "compressed"),
        default="decoded",
        help="evaluate on decoded bitmaps via the buffer pool, or in the "
        "compressed domain",
    )
    p.add_argument("--concurrency", type=int, default=8,
                   help="closed-loop clients / shared-scan wave size")
    p.add_argument("--workers", type=int, default=2,
                   help="service worker threads for the threaded replay")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission-control queue bound")
    p.add_argument("--buffer-pages", type=int, default=16)
    p.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in queries/s (default: closed loop)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query deadline in seconds for the threaded replay",
    )
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache in the threaded replay")
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run the sharded tier with this many row-range shards "
        "(0 = single-process QueryService)",
    )
    p.add_argument(
        "--transport",
        choices=("inline", "process"),
        default="process",
        help="sharded tier only: host shard engines inline "
        "(deterministic) or one worker process per shard (parallel)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser("advise", help="recommend an index design", parents=[traceable])
    p.add_argument("column", help=".npy or text column file")
    p.add_argument("--cardinality", type=int, default=None)
    p.add_argument("--budget-kb", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_advise)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    tracing = bool(getattr(args, "trace", False)) or trace_out is not None
    try:
        if not tracing:
            return args.func(args)
        with obs.observed() as o:
            code = args.func(args)
        export = o.export_json()
        if trace_out is not None:
            Path(trace_out).write_text(export + "\n")
            print(f"wrote trace to {trace_out}", file=sys.stderr)
        else:
            print(export)
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
