"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures without
also catching programming errors (``TypeError`` etc. are still raised for
misuse that the standard library would also reject).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class BitmapError(ReproError):
    """Raised for invalid bit-vector operations (length mismatch, bad index)."""


class CodecError(ReproError):
    """Raised when encoding or decoding a compressed bitmap fails."""


class EncodingSchemeError(ReproError):
    """Raised for invalid encoding-scheme parameters (bad cardinality, slot)."""


class QueryError(ReproError):
    """Raised for malformed queries (empty membership set, reversed range)."""


class DecompositionError(ReproError):
    """Raised for invalid attribute-value decompositions (bad base sequence)."""


class StorageError(ReproError):
    """Raised for storage-layer failures (unknown bitmap key, closed store)."""


class MissingBlobError(StorageError):
    """Raised when a manifest references a bitmap file that does not exist
    (or cannot be read) in the index directory."""


class TruncatedBlobError(StorageError):
    """Raised when a bitmap file on disk is shorter than the byte length
    recorded in the manifest (a torn or partial write)."""


class ChecksumMismatchError(StorageError):
    """Raised when a bitmap file's CRC32 does not match the checksum
    recorded in the manifest (bit rot or overwritten payload)."""


class ManifestMismatchError(StorageError):
    """Raised when the manifest and the directory contents disagree in a
    way that is neither truncation nor a checksum failure: a blob longer
    than recorded, a file entry that escapes the index directory, or a
    malformed manifest record."""


class BufferError_(ReproError):
    """Raised for buffer-pool misuse (zero capacity, unpinned release)."""


class ServeError(ReproError):
    """Base class for query-serving failures (:mod:`repro.serve`)."""


class Overloaded(ServeError):
    """Raised when admission control sheds a request because the service's
    bounded queue is full.  Clients should back off and retry; the
    service never blocks a submitter to create backpressure implicitly."""


class DeadlineExceeded(ServeError):
    """Raised when a request's deadline expired before the service
    finished (or started) evaluating it."""


class ServiceClosed(ServeError):
    """Raised when submitting to, or waiting on, a closed
    :class:`~repro.serve.QueryService`."""


class ParallelError(ReproError):
    """Base class for process-pool / worker-process failures
    (:mod:`repro.parallel`)."""


class WorkerCrashed(ParallelError):
    """Raised when a worker process died (was killed, segfaulted, or
    exited) before answering.  The pool never hangs on a dead worker:
    the crash is always surfaced as this typed error."""


class WorkerUnresponsive(ParallelError):
    """Raised when a worker process failed to answer within its call
    timeout — a hang, distinct from death.  Callers typically kill the
    worker (making further calls raise :class:`WorkerCrashed`) and
    rebuild it."""


class ShardFailed(ServeError):
    """Raised when a shard of a sharded service could not produce its
    partial answer — its worker process died or hung mid-query, or the
    shard is awaiting recovery.  A scatter-gather query fails as a whole
    with this error; the service never returns a partial or wrong
    answer."""


class PlanningError(ReproError):
    """Raised when the expression planner cannot produce a plan."""


class ExperimentError(ReproError):
    """Raised when an experiment is configured inconsistently."""
