"""Zero-copy mmap-backed bitmap store.

:class:`MappedDirectoryStore` is a :class:`~repro.storage.store.DirectoryStore`
whose payloads are memory-mapped read-only instead of copied into the
heap.  :meth:`~repro.storage.store.BitmapStore.payload_view` then hands
out ``uint8`` views *into the mapping* — the OS page cache is the only
copy of the encoded index, and a raw-codec
:meth:`~repro.storage.store.BitmapStore.get_view` aliases it directly
as ``uint64`` words.

Safety properties:

* **Verified before mapped.**  :meth:`attach_mapped` checks the blob's
  byte length and CRC32 against the manifest *before* registering the
  mapping, raising the same typed errors as the copying loader
  (:class:`~repro.errors.TruncatedBlobError`,
  :class:`~repro.errors.ManifestMismatchError`,
  :class:`~repro.errors.ChecksumMismatchError`,
  :class:`~repro.errors.MissingBlobError`) — a corrupt file never
  becomes a live view.
* **Read-only.**  Mappings use ``mmap.ACCESS_READ``, so the numpy views
  are non-writeable; accidental in-place mutation of a fetched bitmap
  raises instead of silently corrupting the store.
* **Rename-safe.**  :func:`~repro.storage.store.atomic_write_bytes`
  replaces blobs via ``os.replace``; an existing mapping keeps the old
  inode alive until its views are garbage collected, so readers holding
  a view across an append never see torn bytes.
* **Fault-mode fallback.**  When a
  :class:`~repro.storage.faults.FaultInjector` is installed the store
  degrades to the copying path (counted as
  ``storage.mmap.copy_fallbacks``), because fault tests deliberately
  rewrite files under the reader.

Obs counters: ``storage.mmap.maps`` (mappings established),
``storage.mmap.view_bytes`` (bytes handed out as zero-copy views) and
``storage.mmap.copy_fallbacks`` (handouts served from a heap copy).
"""

from __future__ import annotations

import mmap
import zlib
from collections.abc import Hashable
from pathlib import Path

import numpy as np

from repro import obs as _obs
from repro.errors import (
    ChecksumMismatchError,
    ManifestMismatchError,
    MissingBlobError,
    TruncatedBlobError,
)
from repro.storage import faults
from repro.storage.pages import DEFAULT_PAGE_SIZE
from repro.storage.store import DirectoryStore, StoredBitmapInfo, stable_blob_name

_EMPTY = np.empty(0, dtype=np.uint8)


class MappedDirectoryStore(DirectoryStore):
    """A :class:`DirectoryStore` serving payloads as read-only mmap views."""

    def __init__(
        self,
        directory: str | Path,
        codec="raw",
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(directory, codec, page_size)
        self._maps: dict[Hashable, np.ndarray] = {}
        self._mmaps: dict[Hashable, mmap.mmap] = {}

    # ------------------------------------------------------------------

    def attach_mapped(
        self,
        key: Hashable,
        length: int,
        path: str | Path | None = None,
        expected_bytes: int | None = None,
        expected_crc: int | None = None,
    ) -> StoredBitmapInfo:
        """Map the blob file for ``key`` and register it under the key.

        Verification happens *on the mapped bytes, before registration*:
        a size or checksum disagreement raises the same typed error the
        copying loader would, and the store is left without the key —
        a poisoned view can never be handed out.  With a fault injector
        installed the file is read and attached as a heap copy instead
        (fault tests rewrite blobs in place, which would invalidate a
        live mapping).
        """
        if path is None:
            path = self._directory / stable_blob_name(key)
        path = Path(path)

        if faults.active() is not None:
            payload = self._read_checked(path, key, expected_bytes, expected_crc)
            return self.attach_payload(key, payload, length)

        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            raise MissingBlobError(
                f"bitmap {key!r}: file {path.name} is missing from {path.parent}"
            ) from None
        with fh:
            size = fh.seek(0, 2)
            self._check_size(size, key, path, expected_bytes)
            if size == 0:
                mapping = None
                view = _EMPTY
            else:
                mapping = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
                view = np.frombuffer(mapping, dtype=np.uint8)
        if expected_crc is not None:
            actual_crc = zlib.crc32(view) & 0xFFFFFFFF
            if actual_crc != expected_crc:
                if mapping is not None:
                    del view  # release the exported pointer, then unmap
                    mapping.close()
                raise ChecksumMismatchError(
                    f"bitmap {key!r}: file {path.name} CRC32 {actual_crc:#010x} "
                    f"does not match manifest {expected_crc:#010x}"
                )

        self._drop_mapping(key)
        self._blobs[key] = view  # the view itself, never a copy
        self._lengths[key] = int(length)
        self._versions[key] = self._versions.get(key, 0) + 1
        self._maps[key] = view
        if mapping is not None:
            self._mmaps[key] = mapping
        o = _obs.active()
        if o is not None:
            o.count("storage.mmap.maps", 1)
        return self.info(key)

    def _check_size(
        self, size: int, key: Hashable, path: Path, expected_bytes: int | None
    ) -> None:
        if expected_bytes is None:
            return
        if size < expected_bytes:
            raise TruncatedBlobError(
                f"bitmap {key!r}: file {path.name} holds {size} bytes, "
                f"manifest records {expected_bytes}"
            )
        if size > expected_bytes:
            raise ManifestMismatchError(
                f"bitmap {key!r}: file {path.name} holds {size} bytes, "
                f"longer than the {expected_bytes} the manifest records"
            )

    def _read_checked(
        self,
        path: Path,
        key: Hashable,
        expected_bytes: int | None,
        expected_crc: int | None,
    ) -> bytes:
        """Copying fallback with identical verification and errors."""
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise MissingBlobError(
                f"bitmap {key!r}: file {path.name} is missing from {path.parent}"
            ) from None
        self._check_size(len(payload), key, path, expected_bytes)
        if expected_crc is not None:
            actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
            if actual_crc != expected_crc:
                raise ChecksumMismatchError(
                    f"bitmap {key!r}: file {path.name} CRC32 {actual_crc:#010x} "
                    f"does not match manifest {expected_crc:#010x}"
                )
        return payload

    # ------------------------------------------------------------------

    def put_payload(self, key, payload, length) -> StoredBitmapInfo:
        """Write the blob durably, then serve it from a fresh mapping."""
        info = super().put_payload(key, payload, length)
        if faults.active() is not None:
            return info  # fault runs stay on the copying path
        return self.attach_mapped(key, length)

    def attach_payload(self, key, payload, length) -> StoredBitmapInfo:
        self._drop_mapping(key)
        return super().attach_payload(key, payload, length)

    def payload_view(self, key: Hashable) -> np.ndarray:
        view = self._maps.get(key)
        if view is None:
            return super().payload_view(key)  # counts copy_fallbacks
        if key not in self._blobs:
            return super().payload_view(key)  # raises StorageError
        o = _obs.active()
        if o is not None:
            o.count("storage.mmap.view_bytes", int(view.nbytes))
        return view

    def is_mapped(self, key: Hashable) -> bool:
        """True iff ``key`` is currently served zero-copy from a mapping."""
        return key in self._maps

    def _drop_mapping(self, key: Hashable) -> None:
        self._maps.pop(key, None)
        mapping = self._mmaps.pop(key, None)
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                pass  # outstanding views keep the pages alive; GC reclaims

    def close(self) -> None:
        """Best-effort release of every mapping.

        Views already handed out keep their pages alive until collected;
        ``close`` only drops the store's own references.
        """
        for key in list(self._mmaps):
            self._drop_mapping(key)
        self._maps.clear()
