"""Page-granularity helpers.

Bitmaps are stored and read in whole pages, as on the paper's Unix file
system; all space and I/O accounting rounds byte counts up to pages.
"""

from __future__ import annotations

from repro.errors import StorageError

#: Default page size (8 KiB, a typical DBMS page).
DEFAULT_PAGE_SIZE = 8192


def validate_page_size(page_size: int) -> int:
    """Return ``page_size`` after checking it is a usable positive size.

    Stores validate at construction time so a bad page size fails
    immediately rather than on the first accounting call.
    """
    if page_size < 1:
        raise StorageError(f"page size must be >= 1, got {page_size}")
    return page_size


def pages_for(num_bytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Number of whole pages needed to store ``num_bytes`` bytes.

    Zero bytes still occupy one page (every stored bitmap has a page of
    its own; the paper stores each bitmap as a separate file region).
    """
    if num_bytes < 0:
        raise StorageError(f"byte count must be >= 0, got {num_bytes}")
    validate_page_size(page_size)
    return max(1, -(-num_bytes // page_size))
