"""Simulated storage stack.

The paper measured wall-clock time on a 1999 disk; this reproduction
substitutes an exactly-accounted simulation (see DESIGN.md §1): bitmaps
are stored page-granular through a codec, reads go through an LRU
buffer pool, and a :class:`~repro.storage.iomodel.CostClock` converts
page reads, decompressed bytes and word operations into simulated time
using a :class:`~repro.storage.iomodel.DiskModel`.
"""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.faults import FaultInjector, InjectedCrash
from repro.storage.iomodel import (
    DEFAULT_DISK_MODEL,
    DISK_MODEL_PRESETS,
    CostClock,
    DiskModel,
    get_disk_model,
)
from repro.storage.mmap_store import MappedDirectoryStore
from repro.storage.pages import DEFAULT_PAGE_SIZE, pages_for, validate_page_size
from repro.storage.store import (
    BitmapStore,
    DirectoryStore,
    StoredBitmapInfo,
    atomic_write_bytes,
    stable_blob_name,
)

__all__ = [
    "BitmapStore",
    "DirectoryStore",
    "MappedDirectoryStore",
    "StoredBitmapInfo",
    "BufferPool",
    "BufferStats",
    "DiskModel",
    "CostClock",
    "DEFAULT_DISK_MODEL",
    "DISK_MODEL_PRESETS",
    "get_disk_model",
    "DEFAULT_PAGE_SIZE",
    "pages_for",
    "validate_page_size",
    "atomic_write_bytes",
    "stable_blob_name",
    "FaultInjector",
    "InjectedCrash",
]
