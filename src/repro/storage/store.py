"""Bitmap stores: codec-encoded bitmap blobs addressed by key.

:class:`BitmapStore` keeps encoded payloads in memory;
:class:`DirectoryStore` additionally writes each bitmap to its own file
under a directory, mirroring the paper's one-file-region-per-bitmap
layout on the Unix file system.  Neither store caches decoded bitmaps —
caching is the :class:`~repro.storage.buffer.BufferPool`'s job, so that
buffer-size effects are observable.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.bitmap import BitVector
from repro.compress import Codec, get_codec
from repro.errors import StorageError
from repro.storage.pages import DEFAULT_PAGE_SIZE, pages_for


@dataclass(frozen=True)
class StoredBitmapInfo:
    """Metadata for one stored bitmap."""

    key: Hashable
    length: int
    encoded_bytes: int
    pages: int


class BitmapStore:
    """In-memory store of codec-encoded bitmaps.

    Parameters
    ----------
    codec:
        Codec instance or registry name (``"raw"``, ``"bbc"``, ...).
    page_size:
        Page granularity for space and I/O accounting.
    """

    def __init__(
        self,
        codec: Codec | str = "raw",
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self._codec = get_codec(codec) if isinstance(codec, str) else codec
        self._page_size = page_size
        self._blobs: dict[Hashable, bytes] = {}
        self._lengths: dict[Hashable, int] = {}

    @property
    def codec(self) -> Codec:
        """The codec used for every bitmap in this store."""
        return self._codec

    @property
    def page_size(self) -> int:
        """Page size used for space accounting."""
        return self._page_size

    # ------------------------------------------------------------------

    def put(self, key: Hashable, vector: BitVector) -> StoredBitmapInfo:
        """Encode and store ``vector`` under ``key`` (replacing any old one)."""
        payload = self._codec.encode(vector)
        self._store_payload(key, payload)
        self._blobs[key] = payload
        self._lengths[key] = len(vector)
        return self.info(key)

    def _store_payload(self, key: Hashable, payload: bytes) -> None:
        """Hook for persistent subclasses."""

    def get(self, key: Hashable) -> BitVector:
        """Decode and return the bitmap stored under ``key``."""
        payload = self._payload(key)
        return self._codec.decode(payload, self._lengths[key])

    def get_payload(self, key: Hashable) -> tuple[bytes, int]:
        """The stored (encoded payload, bit length) without decoding.

        Used by compressed-domain evaluation, which operates on encoded
        payloads directly.
        """
        return self._payload(key), self._lengths[key]

    def _payload(self, key: Hashable) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise StorageError(f"no bitmap stored under key {key!r}") from None

    def info(self, key: Hashable) -> StoredBitmapInfo:
        """Metadata for the bitmap stored under ``key``."""
        payload = self._payload(key)
        return StoredBitmapInfo(
            key=key,
            length=self._lengths[key],
            encoded_bytes=len(payload),
            pages=pages_for(len(payload), self._page_size),
        )

    # ------------------------------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    def keys(self) -> Iterator[Hashable]:
        """All stored keys."""
        return iter(self._blobs)

    def total_bytes(self) -> int:
        """Sum of encoded payload sizes."""
        return sum(len(blob) for blob in self._blobs.values())

    def total_pages(self) -> int:
        """Sum of page footprints (the store's disk-space cost)."""
        return sum(
            pages_for(len(blob), self._page_size) for blob in self._blobs.values()
        )


class DirectoryStore(BitmapStore):
    """A :class:`BitmapStore` that also persists blobs to files.

    Each bitmap is written to ``directory / <sequential id>.bm``; an
    index file is not needed because the in-memory maps are the source
    of truth within a process (this class exists to let benchmarks
    exercise real file I/O when desired).
    """

    def __init__(
        self,
        directory: str | Path,
        codec: Codec | str = "raw",
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(codec, page_size)
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._paths: dict[Hashable, Path] = {}
        self._next_id = 0

    def _store_payload(self, key: Hashable, payload: bytes) -> None:
        path = self._paths.get(key)
        if path is None:
            path = self._directory / f"{self._next_id}.bm"
            self._next_id += 1
            self._paths[key] = path
        path.write_bytes(payload)

    def path_for(self, key: Hashable) -> Path:
        """Filesystem path of the bitmap stored under ``key``."""
        try:
            return self._paths[key]
        except KeyError:
            raise StorageError(f"no bitmap stored under key {key!r}") from None

    def read_from_disk(self, key: Hashable) -> BitVector:
        """Decode the bitmap by actually reading its file."""
        payload = self.path_for(key).read_bytes()
        return self._codec.decode(payload, self._lengths[key])
