"""Bitmap stores: codec-encoded bitmap blobs addressed by key.

:class:`BitmapStore` keeps encoded payloads in memory;
:class:`DirectoryStore` additionally writes each bitmap to its own file
under a directory, mirroring the paper's one-file-region-per-bitmap
layout on the Unix file system.  Neither store caches decoded bitmaps —
caching is the :class:`~repro.storage.buffer.BufferPool`'s job, so that
buffer-size effects are observable.

Durability: :class:`DirectoryStore` names every blob after its *key*
(a deterministic digest, so the same key always maps to the same file
across processes — no sequential counter to collide after a restart)
and writes through :func:`atomic_write_bytes` (temp file → fsync →
rename), so a blob file on disk is always a complete former or current
payload, never a torn mix.  Both paths report durable operations to the
:mod:`repro.storage.faults` injection layer when one is installed.
"""

from __future__ import annotations

import hashlib
import os
import re
from collections.abc import Hashable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress import Codec, get_codec
from repro.errors import StorageError
from repro.storage import faults
from repro.storage.pages import DEFAULT_PAGE_SIZE, pages_for, validate_page_size

#: Suffix of every bitmap blob file in a :class:`DirectoryStore`.
BLOB_SUFFIX = ".bm"
#: Suffix of in-flight temp files (never a committed blob).
TMP_SUFFIX = ".tmp"

_NAME_SAFE = re.compile(r"[^A-Za-z0-9]+")


def _canonical_key(key) -> str:
    """Injective textual form of a key, for stable file naming.

    Only deterministic value types may name a file: ints, strings,
    bytes, bools, None and (nested) tuples of those.  Anything else
    (an object whose repr embeds its memory address, say) would produce
    a different file name in every process.
    """
    if key is None:
        return "n"
    if isinstance(key, bool):
        return "t" if key else "f"
    if isinstance(key, int):
        return f"i{key}"
    if isinstance(key, str):
        return f"s{len(key)}:{key}"
    if isinstance(key, bytes):
        return f"b{key.hex()}"
    if isinstance(key, tuple):
        return "(" + ",".join(_canonical_key(part) for part in key) + ")"
    raise StorageError(
        f"key {key!r} cannot be mapped to a stable file name; use ints, "
        f"strings, bytes or tuples of those"
    )


def stable_blob_name(key: Hashable) -> str:
    """Deterministic blob file name for ``key``.

    A human-readable sanitized prefix plus a 16-hex-digit digest of the
    canonical key form; the digest makes distinct keys collision-free
    regardless of how the prefix sanitizes.
    """
    canonical = _canonical_key(key)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
    prefix = _NAME_SAFE.sub("-", str(key)).strip("-")[:40].strip("-")
    if prefix:
        return f"{prefix}-{digest}{BLOB_SUFFIX}"
    return f"{digest}{BLOB_SUFFIX}"


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename inside it is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse directory fsync
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: temp → fsync → rename.

    A crash at any point leaves either the previous file content or the
    new one at ``path`` — never a torn mix (at worst a stray ``.tmp``
    file, which readers ignore).  Durable steps report to the fault
    injection layer, which may corrupt the payload or simulate a crash.
    """
    path = Path(path)
    tmp = path.parent / (path.name + TMP_SUFFIX)
    if not isinstance(data, bytes):
        data = bytes(data)  # memoryview/ndarray payloads (zero-copy views)
    data = faults.step("write", path.name, data=data, path=tmp)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        faults.step("fsync", path.name, path=tmp)
        os.fsync(fh.fileno())
    faults.step("rename", path.name, path=tmp)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


@dataclass(frozen=True)
class StoredBitmapInfo:
    """Metadata for one stored bitmap."""

    key: Hashable
    length: int
    encoded_bytes: int
    pages: int


class BitmapStore:
    """In-memory store of codec-encoded bitmaps.

    Parameters
    ----------
    codec:
        Codec instance or registry name (``"raw"``, ``"bbc"``, ...).
    page_size:
        Page granularity for space and I/O accounting.
    """

    def __init__(
        self,
        codec: Codec | str = "raw",
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self._codec = get_codec(codec) if isinstance(codec, str) else codec
        self._page_size = validate_page_size(page_size)
        self._blobs: dict[Hashable, bytes] = {}
        self._lengths: dict[Hashable, int] = {}
        self._versions: dict[Hashable, int] = {}

    @property
    def codec(self) -> Codec:
        """The codec used for every bitmap in this store."""
        return self._codec

    @property
    def page_size(self) -> int:
        """Page size used for space accounting."""
        return self._page_size

    # ------------------------------------------------------------------

    def put(self, key: Hashable, vector: BitVector) -> StoredBitmapInfo:
        """Encode and store ``vector`` under ``key`` (replacing any old one)."""
        payload = self._codec.encode(vector)
        return self.put_payload(key, payload, len(vector))

    def put_payload(
        self, key: Hashable, payload: bytes, length: int
    ) -> StoredBitmapInfo:
        """Store an already-encoded ``payload`` of ``length`` bits.

        Used by persistence, which moves encoded blobs byte-identically
        between stores without a decode/re-encode roundtrip.
        """
        self._store_payload(key, payload)
        return self.attach_payload(key, payload, length)

    def attach_payload(
        self, key: Hashable, payload: bytes, length: int
    ) -> StoredBitmapInfo:
        """Register ``payload`` in memory without the persistence hook.

        Index loading attaches payloads it just read (and verified) from
        disk; writing them back out again would turn every load into a
        rewrite of the whole directory.
        """
        self._blobs[key] = bytes(payload)
        self._lengths[key] = int(length)
        self._versions[key] = self._versions.get(key, 0) + 1
        return self.info(key)

    def _store_payload(self, key: Hashable, payload: bytes) -> None:
        """Hook for persistent subclasses."""

    def get(self, key: Hashable) -> BitVector:
        """Decode and return the bitmap stored under ``key``."""
        payload = self._payload(key)
        return self._codec.decode(payload, self._lengths[key])

    def get_view(self, key: Hashable) -> BitVector:
        """Decode through the payload view — zero-copy when possible.

        With a raw codec the returned vector's words *alias* the stored
        payload (the mmap itself for a
        :class:`~repro.storage.mmap_store.MappedDirectoryStore`, the
        in-memory blob otherwise) — treat it as read-only.  Other
        codecs decode normally.  Identical ``codec.decode.*`` obs
        accounting to :meth:`get`.
        """
        return self._codec.decode_view(self.payload_view(key), self._lengths[key])

    def payload_view(self, key: Hashable) -> np.ndarray:
        """Read-only ``uint8`` view of the stored payload.

        The base store serves a view over its in-memory copy and counts
        ``storage.mmap.copy_fallbacks`` — every handout that *could*
        have been zero-copy from a mapping but was not is visible.  The
        mapped subclass serves the mmap and counts
        ``storage.mmap.view_bytes`` instead.
        """
        payload = self._payload(key)
        view = (
            payload
            if isinstance(payload, np.ndarray)
            else np.frombuffer(payload, dtype=np.uint8)
        )
        o = _obs.active()
        if o is not None:
            o.count("storage.mmap.copy_fallbacks", 1)
        return view

    def get_payload(self, key: Hashable) -> tuple[bytes, int]:
        """The stored (encoded payload, bit length) without decoding.

        Used by compressed-domain evaluation, which operates on encoded
        payloads directly.
        """
        return self._payload(key), self._lengths[key]

    def _payload(self, key: Hashable) -> bytes:
        try:
            return self._blobs[key]
        except KeyError:
            raise StorageError(f"no bitmap stored under key {key!r}") from None

    def version(self, key: Hashable) -> int:
        """Monotonic per-key write counter (0 for a never-stored key).

        Bumped on every :meth:`put`/:meth:`put_payload`/:meth:`attach_payload`,
        so a cache holding a decoded copy of ``key`` can detect that the
        stored payload was replaced (an append rewrites every bitmap)
        and re-read instead of serving the stale object.
        """
        return self._versions.get(key, 0)

    def info(self, key: Hashable) -> StoredBitmapInfo:
        """Metadata for the bitmap stored under ``key``."""
        payload = self._payload(key)
        return StoredBitmapInfo(
            key=key,
            length=self._lengths[key],
            encoded_bytes=len(payload),
            pages=pages_for(len(payload), self._page_size),
        )

    # ------------------------------------------------------------------

    def __contains__(self, key: Hashable) -> bool:
        return key in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    def keys(self) -> Iterator[Hashable]:
        """All stored keys."""
        return iter(self._blobs)

    def total_bytes(self) -> int:
        """Sum of encoded payload sizes."""
        return sum(len(blob) for blob in self._blobs.values())

    def total_pages(self) -> int:
        """Sum of page footprints (the store's disk-space cost)."""
        return sum(
            pages_for(len(blob), self._page_size) for blob in self._blobs.values()
        )


class DirectoryStore(BitmapStore):
    """A :class:`BitmapStore` that also persists blobs to files.

    Each bitmap is written to ``directory / stable_blob_name(key)``.
    Deriving the file name from the key (rather than a sequential
    counter) means a store constructed over a non-empty directory can
    never hand a new key a file that already belongs to a different
    key, and the same key always lands on the same file across
    processes.  Writes are atomic (temp → fsync → rename).
    """

    def __init__(
        self,
        directory: str | Path,
        codec: Codec | str = "raw",
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        super().__init__(codec, page_size)
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The directory blobs are written under."""
        return self._directory

    def _store_payload(self, key: Hashable, payload: bytes) -> None:
        atomic_write_bytes(self._directory / stable_blob_name(key), payload)

    def path_for(self, key: Hashable) -> Path:
        """Filesystem path of the bitmap stored under ``key``."""
        if key not in self._blobs:
            raise StorageError(f"no bitmap stored under key {key!r}")
        return self._directory / stable_blob_name(key)

    def read_from_disk(self, key: Hashable) -> BitVector:
        """Decode the bitmap by actually reading its file."""
        payload = self.path_for(key).read_bytes()
        return self._codec.decode(payload, self._lengths[key])
