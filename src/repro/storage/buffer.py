"""LRU buffer pool over a bitmap store.

The query evaluation phase (Section 6.3) is a scheduling problem only
because the buffer is finite: bitmaps evicted between constituent
queries must be re-read from disk.  :class:`BufferPool` makes that
observable — every fetch is either a hit (free) or a miss (charged to
the :class:`~repro.storage.iomodel.CostClock` as one read request plus
decompression CPU), and eviction is LRU over decoded bitmaps measured
in *uncompressed* pages (decoded bitmaps live in memory uncompressed,
as in the paper's setup where an 11 MB pool sufficed).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from dataclasses import dataclass

from repro import obs as _obs
from repro.bitmap import BitVector
from repro.compress import RawCodec
from repro.errors import BufferError_
from repro.storage.iomodel import CostClock
from repro.storage.pages import pages_for
from repro.storage.store import BitmapStore


@dataclass
class BufferStats:
    """Hit/miss/eviction counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def fetches(self) -> int:
        """Total fetches (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hits over fetches (0.0 when nothing was fetched)."""
        if not self.fetches:
            return 0.0
        return self.hits / self.fetches


class BufferPool:
    """Fixed-capacity LRU cache of decoded bitmaps.

    Parameters
    ----------
    store:
        Backing :class:`BitmapStore`.
    capacity_pages:
        Buffer size in pages of *decoded* bitmap data.  Must admit at
        least one bitmap; a fetch larger than the whole capacity is
        still served (it simply occupies the pool alone).
    clock:
        Optional cost clock charged for misses.
    """

    def __init__(
        self,
        store: BitmapStore,
        capacity_pages: int,
        clock: CostClock | None = None,
    ):
        if capacity_pages < 1:
            raise BufferError_(
                f"buffer capacity must be >= 1 page, got {capacity_pages}"
            )
        self._store = store
        self._capacity = capacity_pages
        self._clock = clock
        self._resident: OrderedDict[
            Hashable, tuple[BitVector, int, int]
        ] = OrderedDict()
        self._used_pages = 0
        self.stats = BufferStats()

    @property
    def capacity_pages(self) -> int:
        """Configured capacity in pages."""
        return self._capacity

    @property
    def used_pages(self) -> int:
        """Pages currently occupied by resident bitmaps."""
        return self._used_pages

    def fetch(self, key: Hashable) -> BitVector:
        """Return the bitmap for ``key``, reading through on a miss.

        A resident entry is served only while the store's per-key write
        version is unchanged; a re-stored bitmap (an append replaces
        every bitmap of an index) invalidates the entry, which is then
        re-read and re-charged like any other miss.  Resident bitmaps
        can also change size in place, so each hit re-measures the entry
        and settles the difference against the pool's page accounting,
        evicting colder entries if the bitmap outgrew its old footprint.
        """
        entry = self._resident.get(key)
        if entry is not None:
            vector, cached_pages, version = entry
            if version != self._store.version(key):
                # Stale: the stored payload was replaced after this
                # decode.  Drop the entry and read through below.
                del self._resident[key]
                self._used_pages -= cached_pages
            else:
                pages = pages_for(vector.num_words * 8, self._store.page_size)
                if pages != cached_pages:
                    self._used_pages += pages - cached_pages
                    self._resident[key] = (vector, pages, version)
                    if pages > cached_pages:
                        self._evict_to_fit(0, keep=key)
                self._resident.move_to_end(key)
                self.stats.hits += 1
                o = _obs.active()
                if o is not None:
                    o.count("buffer.hits", 1, pool="decoded")
                return vector

        self.stats.misses += 1
        o = _obs.active()
        if o is not None:
            o.count("buffer.misses", 1, pool="decoded")
        info = self._store.info(key)
        # Decode through the payload view: zero-copy words over a mapped
        # store, a heap view otherwise.  Charges are measured from
        # ``info`` either way, so the two paths account identically.
        vector = self._store.get_view(key)
        if self._clock is not None:
            self._clock.charge_read(info.pages)
            if not isinstance(self._store.codec, RawCodec):
                self._clock.charge_decompress(info.encoded_bytes)

        decoded_pages = pages_for(vector.num_words * 8, self._store.page_size)
        self._evict_to_fit(decoded_pages)
        self._resident[key] = (vector, decoded_pages, self._store.version(key))
        self._used_pages += decoded_pages
        if o is not None:
            o.gauge_set("buffer.used_pages", self._used_pages, pool="decoded")
        return vector

    def _evict_to_fit(
        self, incoming_pages: int, keep: Hashable | None = None
    ) -> None:
        while self._used_pages + incoming_pages > self._capacity:
            victim = next((k for k in self._resident if k != keep), None)
            if victim is None:
                break
            _, pages, _ = self._resident.pop(victim)
            self._used_pages -= pages
            self.stats.evictions += 1
            o = _obs.active()
            if o is not None:
                o.count("buffer.evictions", 1, pool="decoded")

    def contains(self, key: Hashable) -> bool:
        """True iff ``key`` is resident (does not touch LRU order)."""
        return key in self._resident

    def clear(self) -> None:
        """Drop every resident bitmap (stats are kept)."""
        self._resident.clear()
        self._used_pages = 0
