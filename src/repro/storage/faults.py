"""Deterministic fault injection for the durable write path.

Every durable filesystem mutation the storage layer performs — writing
a temp file's bytes, fsyncing it, renaming it into place, unlinking a
stale blob — funnels through :func:`step`.  With no injector installed
(the normal case) ``step`` is one global read and returns immediately;
with one installed it can

* **crash** — raise :class:`InjectedCrash` *before* the Nth durable
  operation takes effect, leaving a half-written temp file behind to
  simulate a torn write at process death;
* **truncate** — silently shorten the payload of matching writes, the
  way a lying disk or a short ``write(2)`` would;
* **flip** — XOR one byte of matching writes, simulating bit rot.

Crashes are modelled as :class:`InjectedCrash`, which deliberately does
*not* derive from :class:`~repro.errors.ReproError`: a real crash is not
catchable by the library, so tests must see it escape ``save_index``
unhandled.  Truncation and flips raise nothing — they corrupt the bytes
in flight, and it is the *reader's* job (checksums, byte lengths) to
fail loudly later.

The installed injector also keeps an ordered log of every durable
operation (:attr:`FaultInjector.ops`), so a test can first run a save
with a passive injector to enumerate the crash points, then replay the
same save once per point::

    probe = FaultInjector()
    with injected(probe):
        save_index(index, path)
    for n in range(len(probe.ops) + 1):
        with injected(FaultInjector(crash_at=n)):
            ...  # save over a fresh copy; expect InjectedCrash or success
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "InjectedCrash",
    "FaultInjector",
    "OpRecord",
    "active",
    "install",
    "uninstall",
    "injected",
    "step",
]


class InjectedCrash(Exception):
    """Simulated process death at a durable-write point.

    Not a :class:`~repro.errors.ReproError` on purpose: library code
    must never catch it, exactly as it could never catch ``SIGKILL``.
    """


@dataclass(frozen=True)
class OpRecord:
    """One durable filesystem operation seen by the injector."""

    #: Position in the injector's op log (0-based).
    index: int
    #: ``"write"`` | ``"fsync"`` | ``"rename"`` | ``"unlink"``.
    kind: str
    #: Final file name the operation targets (not the temp name).
    name: str


class FaultInjector:
    """A deterministic fault plan plus an op log.

    Parameters
    ----------
    crash_at:
        Raise :class:`InjectedCrash` before the durable effect of the
        operation at this 0-based log position.  A crash on a ``write``
        op first leaves the first half of the payload in the temp file,
        simulating a torn write.  ``None`` (default) never crashes.
    truncate:
        ``(substring, keep_bytes)`` — payloads of ``write`` ops whose
        target name contains ``substring`` are silently cut to their
        first ``keep_bytes`` bytes.
    flip:
        ``(substring, offset)`` — payloads of matching ``write`` ops get
        the byte at ``offset % len(payload)`` XORed with ``0xFF``.
    """

    def __init__(
        self,
        crash_at: int | None = None,
        truncate: tuple[str, int] | None = None,
        flip: tuple[str, int] | None = None,
    ):
        self.crash_at = crash_at
        self.truncate = truncate
        self.flip = flip
        self.ops: list[OpRecord] = []

    def step(
        self,
        kind: str,
        name: str,
        data: bytes | None = None,
        path: Path | None = None,
    ) -> bytes | None:
        """Record one durable op; apply the plan; return the payload."""
        record = OpRecord(len(self.ops), kind, name)
        self.ops.append(record)
        if self.crash_at is not None and record.index == self.crash_at:
            if kind == "write" and data is not None and path is not None:
                # Torn write: half the payload reaches the temp file
                # before the "process" dies.
                Path(path).write_bytes(data[: len(data) // 2])
            raise InjectedCrash(
                f"injected crash before op #{record.index}: {kind} {name}"
            )
        if data is None or kind != "write":
            return data
        if self.truncate is not None and self.truncate[0] in name:
            data = data[: self.truncate[1]]
        if self.flip is not None and self.flip[0] in name and data:
            offset = self.flip[1] % len(data)
            data = (
                data[:offset]
                + bytes([data[offset] ^ 0xFF])
                + data[offset + 1 :]
            )
        return data


# ---------------------------------------------------------------------------
# Process-wide installation (mirrors repro.obs)
# ---------------------------------------------------------------------------

_ACTIVE: FaultInjector | None = None


def active() -> FaultInjector | None:
    """The installed injector, or None when fault injection is off."""
    return _ACTIVE


def install(injector: FaultInjector | None = None) -> FaultInjector:
    """Install ``injector`` (or a fresh passive one) process-wide."""
    global _ACTIVE
    _ACTIVE = injector if injector is not None else FaultInjector()
    return _ACTIVE


def uninstall() -> None:
    """Turn fault injection off."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(injector: FaultInjector | None = None):
    """Install an injector for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    current = injector if injector is not None else FaultInjector()
    _ACTIVE = current
    try:
        yield current
    finally:
        _ACTIVE = previous


def step(
    kind: str,
    name: str,
    data: bytes | None = None,
    path: Path | None = None,
) -> bytes | None:
    """Durable-op hook: no-op passthrough unless an injector is active."""
    if _ACTIVE is None:
        return data
    return _ACTIVE.step(kind, name, data=data, path=path)
