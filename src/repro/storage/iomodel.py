"""Simulated disk/CPU cost model.

The constants approximate the paper's testbed (200 MHz Pentium Pro, a
1997 Quantum Fireball over a Unix file system): ~10 ms average
positioning time per read request, ~10 MB/s sequential transfer
(0.8 ms per 8 KiB page), tens of nanoseconds per 64-bit word of bitmap
logic, and a per-byte decompression cost that makes decompression
competitive with I/O savings only when bitmaps actually compress —
which is what produces the paper's Figure 9 crossover between
uncompressed and compressed indexes as skew grows.

Absolute values are not calibrated to the original hardware (DESIGN.md
§1); only the *ratios* matter for reproducing the paper's shapes, and
they are all configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs as _obs


@dataclass(frozen=True)
class DiskModel:
    """Cost constants for the simulated storage stack."""

    #: Positioning (seek + rotational) cost per read request, in ms.
    seek_ms: float = 10.0
    #: Transfer cost per page, in ms (8 KiB at ~10 MB/s).
    transfer_ms_per_page: float = 0.8
    #: CPU cost per 64-bit word touched by a logical operation, in ns.
    cpu_ns_per_word: float = 20.0
    #: CPU cost per compressed byte decoded, in ns.
    decompress_ns_per_byte: float = 60.0


#: Shared default model used by the experiments.
DEFAULT_DISK_MODEL = DiskModel()

#: Named hardware generations.  The paper's conclusions about when
#: compression pays (Figure 9) depend on the I/O : CPU cost ratio, so
#: the presets let the experiments show how those conclusions move
#: across hardware — the 1999 profile is the default everywhere.
DISK_MODEL_PRESETS: dict[str, DiskModel] = {
    # ~1997 Quantum Fireball behind a Unix FS, 200 MHz CPU.
    "hdd-1999": DiskModel(
        seek_ms=10.0,
        transfer_ms_per_page=0.8,
        cpu_ns_per_word=20.0,
        decompress_ns_per_byte=60.0,
    ),
    # 7200 rpm SATA drive, ~50 MB/s, GHz-class CPU.
    "hdd-2005": DiskModel(
        seek_ms=8.0,
        transfer_ms_per_page=0.16,
        cpu_ns_per_word=4.0,
        decompress_ns_per_byte=12.0,
    ),
    # SATA SSD: no positioning cost to speak of, ~500 MB/s.
    "ssd-2015": DiskModel(
        seek_ms=0.1,
        transfer_ms_per_page=0.016,
        cpu_ns_per_word=1.5,
        decompress_ns_per_byte=4.0,
    ),
    # NVMe flash: reads are nearly free next to CPU work.
    "nvme-2020": DiskModel(
        seek_ms=0.02,
        transfer_ms_per_page=0.003,
        cpu_ns_per_word=1.0,
        decompress_ns_per_byte=2.5,
    ),
}


def get_disk_model(name: str) -> DiskModel:
    """Look up a preset disk model by name."""
    try:
        return DISK_MODEL_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown disk model {name!r}; available: "
            f"{sorted(DISK_MODEL_PRESETS)}"
        ) from None


@dataclass
class CostClock:
    """Accumulates simulated time and raw event counts.

    All times are milliseconds.  The clock is shared between the buffer
    pool (I/O and decompression charges) and the evaluation harness
    (word-operation charges).

    Every charge is also reported to the installed :mod:`repro.obs`
    instance as ``clock.*`` counters and attributed to the innermost
    open span, so per-query traces carry exactly the quantities the
    analytic cost model predicts (pages read, words operated).
    """

    model: DiskModel = field(default_factory=lambda: DEFAULT_DISK_MODEL)
    io_ms: float = 0.0
    cpu_ms: float = 0.0
    read_requests: int = 0
    pages_read: int = 0
    bytes_decompressed: int = 0
    words_operated: int = 0

    @property
    def total_ms(self) -> float:
        """Total simulated time (I/O plus CPU), in ms."""
        return self.io_ms + self.cpu_ms

    def charge_read(self, pages: int) -> None:
        """Charge one read request transferring ``pages`` pages."""
        self.read_requests += 1
        self.pages_read += pages
        io_ms = self.model.seek_ms + pages * self.model.transfer_ms_per_page
        self.io_ms += io_ms
        o = _obs.active()
        if o is not None:
            o.count("clock.read_requests", 1)
            o.count("clock.pages_read", pages)
            o.count("clock.io_ms", io_ms)

    def charge_decompress(self, num_bytes: int) -> None:
        """Charge CPU time for decoding ``num_bytes`` compressed bytes."""
        self.bytes_decompressed += num_bytes
        cpu_ms = num_bytes * self.model.decompress_ns_per_byte * 1e-6
        self.cpu_ms += cpu_ms
        o = _obs.active()
        if o is not None:
            o.count("clock.bytes_decompressed", num_bytes)
            o.count("clock.cpu_ms", cpu_ms)

    def charge_word_ops(self, operations: int, words_per_operation: int) -> None:
        """Charge CPU time for bulk logical operations.

        ``operations`` bulk ops each touching ``words_per_operation``
        64-bit words.
        """
        words = operations * words_per_operation
        self.words_operated += words
        cpu_ms = words * self.model.cpu_ns_per_word * 1e-6
        self.cpu_ms += cpu_ms
        o = _obs.active()
        if o is not None:
            o.count("clock.words_operated", words)
            o.count("clock.cpu_ms", cpu_ms)

    def reset(self) -> None:
        """Zero all accumulators (the model is kept)."""
        self.io_ms = 0.0
        self.cpu_ms = 0.0
        self.read_requests = 0
        self.pages_read = 0
        self.bytes_decompressed = 0
        self.words_operated = 0
