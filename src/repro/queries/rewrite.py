"""Membership-query rewrite (Section 5 / Section 6.1 step 1).

"Each membership query can be uniquely expressed as a disjunction of a
minimal number of equality and range queries": sort the value set and
split it into maximal runs of consecutive values.  Each run of length
one becomes an equality constituent; each longer run a range
constituent.  Minimality is immediate — any interval in a disjunction
covering the set must be contained in one maximal run (intervals are
contiguous and may not cover excluded values), and each maximal run
needs at least one interval.
"""

from __future__ import annotations

from repro.queries.model import IntervalQuery, MembershipQuery


def minimal_intervals(query: MembershipQuery) -> list[IntervalQuery]:
    """The unique minimal interval decomposition of a membership query.

    Returns constituent :class:`IntervalQuery` objects in increasing
    value order; their value sets partition ``query.values``.
    """
    values = sorted(query.values)
    runs: list[IntervalQuery] = []
    start = prev = values[0]
    for value in values[1:]:
        if value == prev + 1:
            prev = value
            continue
        runs.append(IntervalQuery(start, prev, query.cardinality))
        start = prev = value
    runs.append(IntervalQuery(start, prev, query.cardinality))
    return runs


def constituent_counts(query: MembershipQuery) -> tuple[int, int]:
    """``(total constituents, equality constituents)`` of the rewrite.

    These are the paper's query-set parameters N_int and N_equ.
    """
    intervals = minimal_intervals(query)
    num_equalities = sum(1 for q in intervals if q.is_equality)
    return len(intervals), num_equalities
