"""Query objects.

Queries are immutable values; classification (equality / one-sided /
two-sided) follows the paper's Section 1 definitions and is exposed as
properties so that the rewrite layer and the cost model agree on the
taxonomy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import QueryError


@dataclass(frozen=True)
class IntervalQuery:
    """The interval query ``low <= A <= high`` on a domain ``[0, C)``.

    ``negated`` models the paper's ``NOT (x <= A <= y)`` form.
    """

    low: int
    high: int
    cardinality: int
    negated: bool = False

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise QueryError(f"cardinality must be >= 1, got {self.cardinality}")
        if not 0 <= self.low <= self.high < self.cardinality:
            raise QueryError(
                f"invalid interval [{self.low}, {self.high}] for "
                f"C={self.cardinality}"
            )

    # -- classification (Section 1) ---------------------------------------

    @property
    def is_equality(self) -> bool:
        """True iff this is an EQ-query (x == y)."""
        return self.low == self.high

    @property
    def is_one_sided(self) -> bool:
        """True iff this is a 1RQ-query (one endpoint on the boundary)."""
        if self.is_equality or self.is_full_domain:
            return False
        return self.low == 0 or self.high == self.cardinality - 1

    @property
    def is_two_sided(self) -> bool:
        """True iff this is a 2RQ-query (0 < x < y < C-1)."""
        return 0 < self.low < self.high < self.cardinality - 1

    @property
    def is_full_domain(self) -> bool:
        """True iff the interval covers the whole domain."""
        return self.low == 0 and self.high == self.cardinality - 1

    @property
    def query_class(self) -> str:
        """``"EQ"``, ``"1RQ"``, ``"2RQ"`` or ``"ALL"`` (full domain)."""
        if self.is_equality:
            return "EQ"
        if self.is_full_domain:
            return "ALL"
        if self.is_one_sided:
            return "1RQ"
        return "2RQ"

    # -- semantics ----------------------------------------------------------

    def value_set(self) -> frozenset[int]:
        """The set of attribute values satisfying the query."""
        inside = frozenset(range(self.low, self.high + 1))
        if self.negated:
            return frozenset(range(self.cardinality)) - inside
        return inside

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of records satisfying the query (naive scan)."""
        mask = (values >= self.low) & (values <= self.high)
        return ~mask if self.negated else mask

    def __str__(self) -> str:
        if self.is_equality:
            body = f"A = {self.low}"
        elif self.low == 0:
            body = f"A <= {self.high}"
        elif self.high == self.cardinality - 1:
            body = f"A >= {self.low}"
        else:
            body = f"{self.low} <= A <= {self.high}"
        return f"NOT ({body})" if self.negated else body


@dataclass(frozen=True)
class MembershipQuery:
    """The membership query ``A IN values`` on a domain ``[0, C)``."""

    values: frozenset[int]
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise QueryError(f"cardinality must be >= 1, got {self.cardinality}")
        if not self.values:
            raise QueryError("membership query over an empty value set")
        if min(self.values) < 0 or max(self.values) >= self.cardinality:
            raise QueryError(
                f"membership values outside domain [0, {self.cardinality})"
            )

    @classmethod
    def of(cls, values, cardinality: int) -> "MembershipQuery":
        """Build from any iterable of values."""
        return cls(frozenset(int(v) for v in values), cardinality)

    def value_set(self) -> frozenset[int]:
        """The set of attribute values satisfying the query."""
        return self.values

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of records satisfying the query (naive scan)."""
        return np.isin(values, np.fromiter(self.values, dtype=np.int64))

    def __str__(self) -> str:
        inner = ", ".join(str(v) for v in sorted(self.values))
        return f"A IN {{{inner}}}"


@dataclass(frozen=True)
class ThresholdQuery:
    """The k-of-N query: at least ``k`` of ``predicates`` hold per record.

    Predicates are interval or membership queries over the same
    attribute domain and form a *multiset* — a predicate listed twice
    counts twice.  ``k == 1`` degenerates to the disjunction of the
    predicates and ``k == N`` to their conjunction; intermediate ``k``
    is the symmetric-function query class (fraud rules, k-of-N audience
    segmentation) the OR/AND algebra cannot express compactly.
    """

    k: int
    predicates: tuple["IntervalQuery | MembershipQuery", ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise QueryError("threshold query needs at least one predicate")
        for predicate in self.predicates:
            if not isinstance(predicate, (IntervalQuery, MembershipQuery)):
                raise QueryError(
                    f"unsupported threshold predicate type "
                    f"{type(predicate).__name__}"
                )
        if not 1 <= self.k <= len(self.predicates):
            raise QueryError(
                f"threshold k must be in [1, {len(self.predicates)}], "
                f"got {self.k}"
            )
        domains = {p.cardinality for p in self.predicates}
        if len(domains) != 1:
            raise QueryError(
                f"threshold predicates span several domains {sorted(domains)}"
            )

    @classmethod
    def of(cls, k: int, predicates) -> "ThresholdQuery":
        """Build from any iterable of predicates."""
        return cls(int(k), tuple(predicates))

    @property
    def cardinality(self) -> int:
        """The shared attribute domain size C."""
        return self.predicates[0].cardinality

    @property
    def query_class(self) -> str:
        """``"TH"`` — thresholds are their own observability class."""
        return "TH"

    def value_set(self) -> frozenset[int]:
        """Attribute values satisfied by at least ``k`` predicates.

        Well defined because every predicate constrains the same
        attribute: a record with value ``v`` satisfies exactly the
        predicates whose value sets contain ``v``.
        """
        counts: Counter = Counter()
        for predicate in self.predicates:
            for value in predicate.value_set():
                counts[value] += 1
        return frozenset(v for v, c in counts.items() if c >= self.k)

    def matches(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of records satisfying the query (naive scan)."""
        counts = np.zeros(len(values), dtype=np.int64)
        for predicate in self.predicates:
            counts += predicate.matches(values)
        return counts >= self.k

    def __str__(self) -> str:
        inner = "; ".join(str(p) for p in self.predicates)
        return f"AT-LEAST-{self.k} OF ({inner})"
