"""Query model: interval, membership and threshold queries + generators.

An *interval query* is ``x <= A <= y`` (Section 1); a *membership
query* is ``A IN {v1, ..., vk}`` (Section 5), which rewrites uniquely
into a minimal disjunction of interval queries; a *threshold query*
(k-of-N over interval/membership predicates) is the symmetric-function
extension of Kaser & Lemire — see ``docs/threshold.md``.
"""

from repro.queries.generator import QuerySetSpec, generate_query_set, paper_query_sets
from repro.queries.model import IntervalQuery, MembershipQuery, ThresholdQuery
from repro.queries.rewrite import minimal_intervals

__all__ = [
    "IntervalQuery",
    "MembershipQuery",
    "ThresholdQuery",
    "minimal_intervals",
    "QuerySetSpec",
    "generate_query_set",
    "paper_query_sets",
]
