"""Query model: interval and membership queries, and their generators.

An *interval query* is ``x <= A <= y`` (Section 1); a *membership
query* is ``A IN {v1, ..., vk}`` (Section 5), which rewrites uniquely
into a minimal disjunction of interval queries.
"""

from repro.queries.generator import QuerySetSpec, generate_query_set, paper_query_sets
from repro.queries.model import IntervalQuery, MembershipQuery
from repro.queries.rewrite import minimal_intervals

__all__ = [
    "IntervalQuery",
    "MembershipQuery",
    "minimal_intervals",
    "QuerySetSpec",
    "generate_query_set",
    "paper_query_sets",
]
