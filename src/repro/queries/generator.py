"""Random query-set generation (Section 7, "Queries").

The paper uses 8 query sets characterized by two parameters: the total
number of interval constituents per membership query, N_int ∈ {1, 2, 5},
and the number of equality constituents among them, N_equ ∈ {0,
ceil(N_int/2), N_int} (deduplicated, giving 2 + 3 + 3 = 8 sets).  Ten
queries are generated per set.

A generated membership query is a union of N_int non-adjacent runs of
consecutive values — non-adjacency guarantees that the minimal interval
rewrite recovers exactly the constituents that were planted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.queries.model import MembershipQuery


@dataclass(frozen=True)
class QuerySetSpec:
    """Parameters of one paper query set."""

    num_intervals: int
    num_equalities: int

    def __post_init__(self) -> None:
        if self.num_intervals < 1:
            raise QueryError(
                f"a membership query needs >= 1 constituent, got {self.num_intervals}"
            )
        if not 0 <= self.num_equalities <= self.num_intervals:
            raise QueryError(
                f"N_equ={self.num_equalities} outside [0, N_int="
                f"{self.num_intervals}]"
            )

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"Nint=5,Nequ=3"``."""
        return f"Nint={self.num_intervals},Nequ={self.num_equalities}"


def paper_query_sets() -> list[QuerySetSpec]:
    """The paper's 8 query sets, in (N_int, N_equ) order."""
    specs: list[QuerySetSpec] = []
    seen: set[tuple[int, int]] = set()
    for n_int in (1, 2, 5):
        for n_equ in (0, -(-n_int // 2), n_int):
            if (n_int, n_equ) not in seen:
                seen.add((n_int, n_equ))
                specs.append(QuerySetSpec(n_int, n_equ))
    return specs


def generate_membership_query(
    spec: QuerySetSpec,
    cardinality: int,
    rng: np.random.Generator,
    max_range_length: int | None = None,
) -> MembershipQuery:
    """One random membership query matching ``spec`` exactly.

    The query's minimal interval rewrite has exactly
    ``spec.num_intervals`` constituents of which ``spec.num_equalities``
    are equalities.  Raises :class:`QueryError` when the domain is too
    small to fit the requested constituents with separating gaps.
    """
    n_int = spec.num_intervals
    n_equ = spec.num_equalities
    n_rng = n_int - n_equ
    if max_range_length is None:
        # Keep ranges a modest fraction of the domain so several fit.
        max_range_length = max(2, cardinality // (2 * n_int))
    min_total = n_equ + 2 * n_rng + (n_int - 1)
    if min_total > cardinality:
        raise QueryError(
            f"domain C={cardinality} too small for {n_equ} equalities and "
            f"{n_rng} ranges with separating gaps"
        )

    # Choose constituent lengths: 1 for equalities, >= 2 for ranges.
    lengths = [1] * n_equ
    for _ in range(n_rng):
        hi = max(2, max_range_length)
        lengths.append(int(rng.integers(2, hi + 1)))
    # Shrink ranges if the draw overshot the domain.
    while sum(lengths) + (n_int - 1) > cardinality:
        widest = max(range(len(lengths)), key=lambda i: lengths[i])
        if lengths[widest] <= 2:
            raise QueryError(
                f"cannot fit constituents into domain C={cardinality}"
            )
        lengths[widest] -= 1
    order = rng.permutation(n_int)
    lengths = [lengths[i] for i in order]

    # Distribute the slack into n_int + 1 gaps; interior gaps get +1 so
    # runs never merge.
    slack = cardinality - sum(lengths) - (n_int - 1)
    cuts = np.sort(rng.integers(0, slack + 1, size=n_int))
    gaps = np.diff(np.concatenate(([0], cuts, [slack])))

    values: list[int] = []
    position = 0
    for i, length in enumerate(lengths):
        position += int(gaps[i]) + (1 if i else 0)
        values.extend(range(position, position + length))
        position += length
    return MembershipQuery.of(values, cardinality)


def generate_query_set(
    spec: QuerySetSpec,
    cardinality: int,
    num_queries: int = 10,
    seed: int | None = 0,
) -> list[MembershipQuery]:
    """The paper's query set: ``num_queries`` random queries for ``spec``."""
    rng = np.random.default_rng(seed)
    return [
        generate_membership_query(spec, cardinality, rng)
        for _ in range(num_queries)
    ]
