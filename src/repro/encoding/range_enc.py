"""Range encoding (the paper's R, Section 2, Equation 2).

C - 1 bitmaps ``R^v = [0, v]`` for v in 0..C-2 (``R^{C-1}`` would be all
ones and is never stored).  Equation (2) evaluates every interval query
in at most two bitmap scans:

* ``A = 0``            -> ``R^0``
* ``A = v`` (interior) -> ``R^v XOR R^{v-1}``
* ``A = C-1``          -> ``NOT R^{C-2}``
* ``A <= v``           -> ``R^v``
* ``A >= v``           -> ``NOT R^{v-1}``
* ``v1 <= A <= v2``    -> ``R^{v2} XOR R^{v1-1}`` (valid because
  ``[0, v1-1]`` is a subset of ``[0, v2]``).
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one


class RangeEncoding(EncodingScheme):
    """The range encoding scheme R."""

    name = "R"
    prefers_equality = False

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        return {
            v: frozenset(range(v + 1)) for v in range(cardinality - 1)
        }

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if cardinality == 1:
            return one()
        if value == 0:
            return leaf(0)
        if value == cardinality - 1:
            return not_of(leaf(cardinality - 2))
        return leaf(value) ^ leaf(value - 1)

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if value == cardinality - 1:
            return one()
        return leaf(value)

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        return leaf(high) ^ leaf(low - 1)


__all__ = ["RangeEncoding"]
