"""Name-based lookup of encoding schemes."""

from __future__ import annotations

from repro.encoding.base import EncodingScheme
from repro.encoding.equality import EqualityEncoding
from repro.encoding.hybrid_ei import EqualityIntervalEncoding
from repro.encoding.hybrid_ei_star import EqualityIntervalStarEncoding
from repro.encoding.hybrid_er import EqualityRangeEncoding
from repro.encoding.binary import BinaryEncoding
from repro.encoding.interval import IntervalEncoding
from repro.encoding.interval_plus import IntervalPlusEncoding
from repro.encoding.oreo import OreoEncoding
from repro.encoding.range_enc import RangeEncoding
from repro.errors import EncodingSchemeError

#: The three basic encoding schemes studied in Sections 2-4.
BASIC_SCHEME_NAMES = ("E", "R", "I")
#: The four hybrid schemes of Section 5.
HYBRID_SCHEME_NAMES = ("ER", "O", "EI", "EI*")
#: All seven schemes in the paper's order.
ALL_SCHEME_NAMES = BASIC_SCHEME_NAMES + HYBRID_SCHEME_NAMES
#: Extension schemes beyond the paper's main text: the footnote-4 odd-C
#: interval variant and the §2 related-work binary (bit-sliced) scheme.
EXTENDED_SCHEME_NAMES = ("I+", "B")

_SCHEMES: dict[str, EncodingScheme] = {
    scheme.name: scheme
    for scheme in (
        EqualityEncoding(),
        RangeEncoding(),
        IntervalEncoding(),
        EqualityRangeEncoding(),
        OreoEncoding(),
        EqualityIntervalEncoding(),
        EqualityIntervalStarEncoding(),
        IntervalPlusEncoding(),
        BinaryEncoding(),
    )
}


def get_scheme(name: str) -> EncodingScheme:
    """Look up a scheme by its paper name (``"E"``, ``"R"``, ``"I"``,
    ``"ER"``, ``"O"``, ``"EI"``, ``"EI*"``)."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise EncodingSchemeError(
            f"unknown encoding scheme {name!r}; available: {ALL_SCHEME_NAMES}"
        ) from None
