"""Interval encoding (the paper's I, Section 4, Equations 4-6).

With m = floor(C/2) - 1, the scheme stores ceil(C/2) bitmaps
``I^j = [j, j + m]`` for j in 0..ceil(C/2)-1 — about half the space of
range encoding — while still answering every interval query in at most
two bitmap scans.

The equality and one-sided equations follow the paper's Equations (4)
and (5).  The two-sided case analysis (Equation 6; the paper defers the
full derivation to the tech report) is re-derived here.  Writing
``k = ceil(C/2)`` (so stored indexes are ``0..k-1``) and ``d = v2 - v1``
for a two-sided query ``[v1, v2]`` with ``0 < v1 < v2 < C-1``:

* ``d == m``: the query *is* a stored bitmap, ``I^{v1}`` (one scan;
  ``v1 = v2 - m <= C-2-m <= k-1`` so the index is valid);
* ``d > m``: ``I^{v1} OR I^{v2-m}`` — the two intervals overlap or abut
  because ``d <= C-3 <= 2m+1``, and their union is exactly ``[v1, v2]``;
* ``d < m``: exactly one of three two-scan forms applies:

  - ``I^{v1} AND I^{v2-m}``        when ``v1 <= k-1`` and ``v2 >= m``,
  - ``I^{v1} AND NOT I^{v2+1}``    when ``v1 <= k-1`` and ``v2 < m``
    (then ``v2+1 <= m <= k-1``),
  - ``I^{v2-m} AND NOT I^{v1-m-1}`` when ``v1 > k-1`` (then
    ``v1 >= m+1`` so both indexes are valid).

  Coverage: if ``v1 <= k-1`` one of the first two applies depending on
  ``v2 >= m``; otherwise the third does, so every legal (v1, v2) is
  answered in at most two scans.
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one


def interval_params(cardinality: int) -> tuple[int, int]:
    """(number of bitmaps k, interval width parameter m) for cardinality C."""
    k = (cardinality + 1) // 2
    m = cardinality // 2 - 1
    return k, m


class IntervalEncoding(EncodingScheme):
    """The interval encoding scheme I."""

    name = "I"
    prefers_equality = False

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        if cardinality == 1:
            return {}
        k, m = interval_params(cardinality)
        return {
            j: frozenset(range(j, j + m + 1)) for j in range(k)
        }

    # ------------------------------------------------------------------
    # Equation (4): equality queries
    # ------------------------------------------------------------------

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if cardinality == 1:
            return one()
        k, m = interval_params(cardinality)
        if m == 0:
            # C = 2 or C = 3: each stored bitmap is a singleton.
            if value < k:
                return leaf(value)
            if cardinality == 2:
                return not_of(leaf(0))
            # C = 3, value = 2.
            return not_of(leaf(0) | leaf(1))
        if value == cardinality - 1:
            return not_of(leaf(k - 1) | leaf(0))
        if value < m:
            return leaf(value) & not_of(leaf(value + 1))
        if value == m:
            return leaf(m) & leaf(0)
        # m < value < C - 1: {v} = I^{v-m} \ I^{v-m-1}.
        return leaf(value - m) & not_of(leaf(value - m - 1))

    # ------------------------------------------------------------------
    # Equation (5): one-sided range queries
    # ------------------------------------------------------------------

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if value == cardinality - 1:
            return one()
        if value == 0:
            return self.eq_expr(cardinality, 0)
        _, m = interval_params(cardinality)
        if value < m:
            return leaf(0) & not_of(leaf(value + 1))
        if value == m:
            return leaf(0)
        return leaf(0) | leaf(value - m)

    # ------------------------------------------------------------------
    # Equation (6): two-sided range queries (derivation in module docstring)
    # ------------------------------------------------------------------

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        k, m = interval_params(cardinality)
        d = high - low
        if d == m:
            return leaf(low)
        if d > m:
            return leaf(low) | leaf(high - m)
        # d < m: one of three two-scan forms applies.
        if low <= k - 1:
            if high >= m:
                return leaf(low) & leaf(high - m)
            return leaf(low) & not_of(leaf(high + 1))
        return leaf(high - m) & not_of(leaf(low - m - 1))


__all__ = ["IntervalEncoding", "interval_params"]
