"""Equality-interval hybrid encoding (the paper's EI, Section 5.3).

``EI = E ∪ I``: equality constituents are answered from the equality
bitmaps (one scan) and range constituents from the interval bitmaps
(at most two scans).  Per the paper, EI reduces to plain equality
encoding when C < 3.

Slot labels are ``("E", v)`` and ``("I", j)``.
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.encoding.equality import EqualityEncoding
from repro.encoding.interval import IntervalEncoding
from repro.errors import QueryError
from repro.expr import Expr
from repro.expr.nodes import And, Const, Leaf, Not, Or, Xor


def _relabel(expr: Expr, tag: str) -> Expr:
    """Prefix every leaf key of a sub-scheme expression with ``tag``."""
    if isinstance(expr, Leaf):
        return Leaf((tag, expr.key))
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Not):
        return Not(_relabel(expr.child, tag))
    if isinstance(expr, And):
        return And(tuple(_relabel(c, tag) for c in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(_relabel(c, tag) for c in expr.operands))
    if isinstance(expr, Xor):
        return Xor(tuple(_relabel(c, tag) for c in expr.operands))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class EqualityIntervalEncoding(EncodingScheme):
    """The equality-interval hybrid scheme EI."""

    name = "EI"
    prefers_equality = True

    def __init__(self) -> None:
        super().__init__()
        self._equality = EqualityEncoding()
        self._interval = IntervalEncoding()

    def _uses_interval(self, cardinality: int) -> bool:
        return cardinality >= 3

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        catalog: dict[SlotKey, frozenset[int]] = {
            ("E", slot): values
            for slot, values in self._equality.catalog(cardinality).items()
        }
        if self._uses_interval(cardinality):
            for slot, values in self._interval.catalog(cardinality).items():
                catalog[("I", slot)] = values
        return catalog

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        return _relabel(self._equality.eq_expr(cardinality, value), "E")

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if not self._uses_interval(cardinality):
            return _relabel(self._equality.le_expr(cardinality, value), "E")
        return _relabel(self._interval.le_expr(cardinality, value), "I")

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        return _relabel(self._interval.two_sided_expr(cardinality, low, high), "I")


__all__ = ["EqualityIntervalEncoding", "_relabel"]
