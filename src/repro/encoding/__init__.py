"""Bitmap encoding schemes.

An encoding scheme decides which attribute values set each stored
bitmap's bits (Section 1 of the paper).  This subpackage implements all
seven schemes studied in the paper:

=========  ==========================================  =========
Name       Class                                        Paper §
=========  ==========================================  =========
``E``      :class:`~repro.encoding.equality.EqualityEncoding`       §2, Eq. 1
``R``      :class:`~repro.encoding.range_enc.RangeEncoding`         §2, Eq. 2
``I``      :class:`~repro.encoding.interval.IntervalEncoding`       §4, Eqs. 4–6
``ER``     :class:`~repro.encoding.hybrid_er.EqualityRangeEncoding` §5.1
``O``      :class:`~repro.encoding.oreo.OreoEncoding`               §5.2
``EI``     :class:`~repro.encoding.hybrid_ei.EqualityIntervalEncoding` §5.3
``EI*``    :class:`~repro.encoding.hybrid_ei_star.EqualityIntervalStarEncoding` §5.4
=========  ==========================================  =========

Schemes are looked up by name via :func:`~repro.encoding.registry.get_scheme`.
"""

from repro.encoding.base import EncodingScheme
from repro.encoding.costmodel import (
    expected_scans,
    query_class_queries,
    space_cost,
    update_costs,
)
from repro.encoding.binary import BinaryEncoding
from repro.encoding.equality import EqualityEncoding
from repro.encoding.hybrid_ei import EqualityIntervalEncoding
from repro.encoding.hybrid_ei_star import EqualityIntervalStarEncoding
from repro.encoding.hybrid_er import EqualityRangeEncoding
from repro.encoding.interval import IntervalEncoding
from repro.encoding.interval_plus import IntervalPlusEncoding
from repro.encoding.oreo import OreoEncoding
from repro.encoding.range_enc import RangeEncoding
from repro.encoding.registry import (
    ALL_SCHEME_NAMES,
    BASIC_SCHEME_NAMES,
    EXTENDED_SCHEME_NAMES,
    HYBRID_SCHEME_NAMES,
    get_scheme,
)

__all__ = [
    "EncodingScheme",
    "EqualityEncoding",
    "RangeEncoding",
    "IntervalEncoding",
    "EqualityRangeEncoding",
    "OreoEncoding",
    "EqualityIntervalEncoding",
    "EqualityIntervalStarEncoding",
    "IntervalPlusEncoding",
    "BinaryEncoding",
    "get_scheme",
    "ALL_SCHEME_NAMES",
    "BASIC_SCHEME_NAMES",
    "HYBRID_SCHEME_NAMES",
    "EXTENDED_SCHEME_NAMES",
    "expected_scans",
    "space_cost",
    "update_costs",
    "query_class_queries",
]
