"""EI* — the space-reduced equality-interval hybrid (Section 5.4).

``EI* = I ∪ {P^1, ..., P^r}`` with ``r = ceil((C-4)/2)`` and
``P^i = E^i ∪ E^{i+m+1} = {i, i+m+1}`` (m as in interval encoding).
The design exploits the fact that ``I^0 = [0, m]`` is needed by most
range evaluations anyway: each pair bitmap intersected with ``I^0`` (or
its complement) isolates a single value, so equality queries cost two
scans of which one is the frequently cached ``I^0``.  The scheme
reduces to plain interval encoding when C <= 4.

The paper defers EI*'s evaluation expressions to the tech report; the
derivation used here (verified against the planner and naive scans):

* pairs cover the *low* values ``1..r`` and the *high* values
  ``m+2..m+1+r``;
* ``A = v`` with ``1 <= v <= r``:        ``P^v AND I^0``;
* ``A = v`` with ``m+2 <= v <= m+1+r``:  ``P^{v-m-1} AND NOT I^0``;
* the uncovered values (0; m and m+1 when not pair-covered; C-1) use
  the interval-encoding equality equation (also two scans);
* all range queries use the interval-encoding equations unchanged.

Slot labels are ``("I", j)`` and ``("P", i)``.
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.encoding.hybrid_ei import _relabel
from repro.encoding.interval import IntervalEncoding, interval_params
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of


def ei_star_params(cardinality: int) -> tuple[int, int]:
    """(pair count r, interval parameter m) for cardinality C."""
    _, m = interval_params(cardinality)
    r = max(0, (cardinality - 4 + 1) // 2)  # ceil((C-4)/2)
    return r, m


class EqualityIntervalStarEncoding(EncodingScheme):
    """The EI* hybrid scheme."""

    name = "EI*"
    prefers_equality = True

    def __init__(self) -> None:
        super().__init__()
        self._interval = IntervalEncoding()

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        catalog: dict[SlotKey, frozenset[int]] = {
            ("I", slot): values
            for slot, values in self._interval.catalog(cardinality).items()
        }
        r, m = ei_star_params(cardinality)
        for i in range(1, r + 1):
            catalog[("P", i)] = frozenset({i, i + m + 1})
        return catalog

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        r, m = ei_star_params(cardinality)
        if r:
            if 1 <= value <= r:
                return leaf(("P", value)) & leaf(("I", 0))
            if m + 2 <= value <= m + 1 + r:
                return leaf(("P", value - m - 1)) & not_of(leaf(("I", 0)))
        return _relabel(self._interval.eq_expr(cardinality, value), "I")

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        return _relabel(self._interval.le_expr(cardinality, value), "I")

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        return _relabel(self._interval.two_sided_expr(cardinality, low, high), "I")


__all__ = ["EqualityIntervalStarEncoding", "ei_star_params"]
