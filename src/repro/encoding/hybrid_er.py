"""Equality-range hybrid encoding (the paper's ER, Section 5.1).

``ER = E ∪ R``, but ``R^0`` and ``R^{C-2}`` are not materialized because
``R^0 = E^0`` and ``R^{C-2} = NOT E^{C-1}``.  Equality constituents are
evaluated with the equality bitmaps (one scan) and range constituents
with the range bitmaps (one scan per side), so the scheme is the most
time-efficient hybrid at roughly double the space of the basic schemes.

Slot labels are ``("E", v)`` for the equality part and ``("R", v)`` for
the materialized range part (``1 <= v <= C-3``).
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one


class EqualityRangeEncoding(EncodingScheme):
    """The equality-range hybrid scheme ER."""

    name = "ER"
    prefers_equality = True

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        catalog: dict[SlotKey, frozenset[int]] = {}
        if cardinality == 2:
            catalog[("E", 0)] = frozenset({0})
            return catalog
        for v in range(cardinality):
            catalog[("E", v)] = frozenset({v})
        for v in range(1, cardinality - 2):
            catalog[("R", v)] = frozenset(range(v + 1))
        return catalog

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if cardinality == 1:
            return one()
        if cardinality == 2:
            return leaf(("E", 0)) if value == 0 else not_of(leaf(("E", 0)))
        return leaf(("E", value))

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if value == cardinality - 1:
            return one()
        if value == 0:
            return self.eq_expr(cardinality, 0)
        if value == cardinality - 2:
            # R^{C-2} = NOT E^{C-1} is virtual.
            return not_of(self.eq_expr(cardinality, cardinality - 1))
        return leaf(("R", value))

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        # XOR of the two prefixes when both are real range bitmaps;
        # otherwise fall back to the conjunction of one-sided forms.
        if 1 <= low - 1 <= cardinality - 3 and 1 <= high <= cardinality - 3:
            return leaf(("R", high)) ^ leaf(("R", low - 1))
        return self.le_expr(cardinality, high) & self.ge_expr(cardinality, low)


__all__ = ["EqualityRangeEncoding"]
