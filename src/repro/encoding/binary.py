"""Binary (bit-sliced) encoding — the §2 related-work design.

Wu and Buchmann's encoded bitmap index represents each attribute value
in binary: ``k = ceil(log2 C)`` bitmaps, where bitmap ``B_i`` marks the
records whose value has bit i set.  In the paper's framework this is
the equality-encoded index with the maximum number of components
(base <2, 2, ..., 2>); implementing it as a one-component scheme makes
it directly comparable in the Figure 3 performance field, where it is
the extreme low-space / high-time point.

Evaluation:

* equality — the conjunction of all k slices or their complements
  (k scans);
* ``A <= v`` — the classic bit-sliced range walk from the most
  significant slice down::

      le = OR over set bits i of v:   (AND of matching higher slices) AND NOT B_i
           OR (AND of all slices matching v)          -- the equality tail

  which also touches exactly the k slices (complements are free);
* two-sided ranges conjoin two one-sided walks over the *same* k
  slices, so every interval query costs exactly k scans.

With space ``ceil(log2 C)`` and time ``~log2 C`` this scheme is
Pareto-incomparable to E/R/I rather than dominated — the design-space
corner the paper's §2 discussion situates it in.
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, and_of, leaf, not_of, one, or_of


def num_slices(cardinality: int) -> int:
    """Number of binary slices for cardinality C: ceil(log2 C)."""
    return max(0, (cardinality - 1).bit_length())


class BinaryEncoding(EncodingScheme):
    """The binary (bit-sliced) encoding scheme ``B``."""

    name = "B"
    prefers_equality = True

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        k = num_slices(cardinality)
        return {
            i: frozenset(
                v for v in range(cardinality) if (v >> i) & 1
            )
            for i in range(k)
        }

    def _slice(self, bit_index: int, bit_value: int) -> Expr:
        """``B_i`` or its complement."""
        node = leaf(bit_index)
        return node if bit_value else not_of(node)

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        k = num_slices(cardinality)
        if k == 0:
            return one()
        return and_of(
            self._slice(i, (value >> i) & 1) for i in reversed(range(k))
        )

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if value == cardinality - 1:
            return one()
        k = num_slices(cardinality)
        # Evaluate as A < value+1 with the MSB-to-LSB walk: a record is
        # below w iff it matches w on some slice prefix and has a 0
        # where w has a 1.  Using w = value+1 (always < 2^k here since
        # value <= C-2) skips value's trailing one-bits for free — e.g.
        # "A <= 31" needs only the one slice B_5.
        w = value + 1
        terms: list[Expr] = []
        prefix: list[Expr] = []
        for i in reversed(range(k)):
            bit = (w >> i) & 1
            if bit:
                terms.append(and_of([*prefix, not_of(leaf(i))]))
            prefix.append(self._slice(i, bit))
        return or_of(terms)

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        return self.le_expr(cardinality, high) & self.ge_expr(cardinality, low)


__all__ = ["BinaryEncoding", "num_slices"]
