"""Equality encoding (the paper's E, Section 2, Equation 1).

C bitmaps ``E^v = {v}``; the i-th bit of ``E^v`` is set iff record i has
value v.  Following the paper's footnote, the degenerate case C = 2
stores only ``E^0`` (since ``E^1`` is its complement).

Interval queries are evaluated by Equation (1): OR the bitmaps inside
the interval if there are at most ``floor(C/2)`` of them, otherwise
complement the OR of the bitmaps outside it.
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one, or_of


class EqualityEncoding(EncodingScheme):
    """The equality encoding scheme E."""

    name = "E"
    prefers_equality = True

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        if cardinality == 2:
            return {0: frozenset({0})}
        return {v: frozenset({v}) for v in range(cardinality)}

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if cardinality == 1:
            return one()
        if cardinality == 2:
            return leaf(0) if value == 0 else not_of(leaf(0))
        return leaf(value)

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if value == cardinality - 1:
            return one()
        return self._interval(cardinality, 0, value)

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        return self._interval(cardinality, low, high)

    def _interval(self, cardinality: int, low: int, high: int) -> Expr:
        """Equation (1): direct OR or complemented OR, whichever is smaller."""
        if cardinality == 2:
            # Only proper sub-domain interval here is a singleton.
            return self.eq_expr(cardinality, low)
        width = high - low + 1
        if width <= cardinality // 2:
            return or_of(leaf(v) for v in range(low, high + 1))
        outside = [leaf(v) for v in range(0, low)]
        outside += [leaf(v) for v in range(high + 1, cardinality)]
        return not_of(or_of(outside))


__all__ = ["EqualityEncoding"]
