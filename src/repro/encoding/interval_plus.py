"""The odd-cardinality interval-encoding variant (paper footnote 4).

The paper's Section 4 defines interval encoding with interval width
``m + 1`` where ``m = floor(C/2) - 1`` and notes that "another variant
of the interval encoding scheme for the case when C is odd is discussed
elsewhere [CI98a]".  Our exhaustive optimality search (Table 1
experiment) shows why the variant exists: at odd C the main-text scheme
is *not* on the 1RQ/RQ Pareto frontier, while the variant with

* ``m' = floor(C/2)`` (one wider interval),
* ``ceil(C/2)`` bitmaps ``I^j = [j, j + m']`` for ``j = 0..floor(C/2)``

is — e.g. at C = 5 the search's dominating catalog {[0,2], [1,3],
[2,4]} is exactly this variant.  For even C the two schemes coincide
(``m' = m + 1`` would overshoot; we keep ``m' = C/2 - 1``).

Evaluation equations are the same case analysis as the main scheme with
two differences at odd C: the last stored bitmap reaches C-1, so
``A = C-1`` is ``I^{m'} AND NOT I^{m'-1}`` rather than a complemented
union, and C = 3 needs no special-casing (m' = 1 there).
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.encoding.interval import IntervalEncoding
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one


def interval_plus_params(cardinality: int) -> tuple[int, int]:
    """(number of bitmaps k, width parameter m') for cardinality C."""
    if cardinality % 2:
        m = cardinality // 2
    else:
        m = cardinality // 2 - 1
    k = (cardinality + 1) // 2
    return k, m


class IntervalPlusEncoding(EncodingScheme):
    """Interval encoding with the odd-C width variant (``"I+"``).

    Identical to :class:`~repro.encoding.interval.IntervalEncoding` for
    even C; strictly better expected 1RQ/RQ scans at odd C.
    """

    name = "I+"
    prefers_equality = False

    def __init__(self) -> None:
        super().__init__()
        self._even = IntervalEncoding()

    def _is_odd(self, cardinality: int) -> bool:
        return cardinality % 2 == 1 and cardinality >= 3

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        if not self._is_odd(cardinality):
            return dict(self._even.catalog(cardinality))
        k, m = interval_plus_params(cardinality)
        return {j: frozenset(range(j, j + m + 1)) for j in range(k)}

    # ------------------------------------------------------------------

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if not self._is_odd(cardinality):
            return self._even.eq_expr(cardinality, value)
        k, m = interval_plus_params(cardinality)
        if value < m:
            return leaf(value) & not_of(leaf(value + 1))
        if value == m:
            return leaf(m) & leaf(0)
        if value == cardinality - 1:
            # The last bitmap reaches C-1: {C-1} = I^{m} \ I^{m-1}.
            return leaf(m) & not_of(leaf(m - 1))
        # m < value < C-1: {v} = I^{v-m} \ I^{v-m-1}.
        return leaf(value - m) & not_of(leaf(value - m - 1))

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        if not self._is_odd(cardinality):
            return self._even.le_expr(cardinality, value)
        _, m = interval_plus_params(cardinality)
        if value == cardinality - 1:
            return one()
        if value < m:
            return leaf(0) & not_of(leaf(value + 1))
        if value == m:
            return leaf(0)
        return leaf(0) | leaf(value - m)

    def ge_expr(self, cardinality: int, value: int) -> Expr:
        """``A >= value`` using the odd-C catalog's reflection symmetry.

        At odd C the catalog is symmetric under ``x -> C-1-x`` (bitmap
        ``I^j`` maps to ``I^{m-j}``), so every ``>=`` query mirrors a
        ``<=`` query: ``[v, C-1]`` costs exactly what ``[0, C-1-v]``
        does, instead of paying the complement recursion's extra scan.
        """
        self._check_value(cardinality, value)
        if not self._is_odd(cardinality):
            return super().ge_expr(cardinality, value)
        _, m = interval_plus_params(cardinality)
        if value == 0:
            return one()
        if value == m:
            return leaf(m)
        if value == m + 1:
            return not_of(leaf(0))
        if value < m:
            return leaf(m) | leaf(value)
        # value > m + 1 (includes value == C-1).
        return leaf(m) & not_of(leaf(value - m - 1))

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        if not self._is_odd(cardinality):
            return self._even.two_sided_expr(cardinality, low, high)
        _, m = interval_plus_params(cardinality)
        d = high - low
        if d == m:
            return leaf(low)
        if d > m:
            return leaf(low) | leaf(high - m)
        if low <= m:
            if high >= m:
                return leaf(low) & leaf(high - m)
            return leaf(low) & not_of(leaf(high + 1))
        return leaf(high - m) & not_of(leaf(low - m - 1))


__all__ = ["IntervalPlusEncoding", "interval_plus_params"]
