"""Analytic space-time cost model for encoding schemes (Section 3).

The paper measures time as the *expected number of bitmap scans* for a
query drawn uniformly from a query class, and space as the *number of
bitmaps stored*.  Both are exactly computable for any scheme by
enumerating the class and counting the distinct leaves of each query's
evaluation expression; no sampling or approximation is involved.

Query classes (Section 1):

* ``EQ``  — ``A = v``              for each v in [0, C);
* ``1RQ`` — ``A <= y`` (0 < y < C-1 ... including y = 0) and
            ``A >= x`` (0 < x < C-1 ... including x = C-1), i.e. every
            interval with exactly one endpoint clamped to the domain
            boundary that is not itself an equality or the full domain;
* ``2RQ`` — ``x <= A <= y`` with 0 < x < y < C-1;
* ``RQ``  — the union of 1RQ and 2RQ.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.encoding.base import EncodingScheme
from repro.errors import QueryError
from repro.expr import expression_scan_count, simplify

QUERY_CLASSES = ("EQ", "1RQ", "2RQ", "RQ")


def query_class_queries(cardinality: int, query_class: str) -> Iterator[tuple[int, int]]:
    """Enumerate every interval ``(low, high)`` in a query class.

    The classification follows the paper's precedence: an interval with
    ``low == high`` is an equality query even when it touches a domain
    boundary, and the full domain ``[0, C-1]`` belongs to no class.
    """
    c = cardinality
    if query_class == "EQ":
        for v in range(c):
            yield (v, v)
    elif query_class == "1RQ":
        # "A <= y": exclude the equality [0, 0] and the full domain.
        for y in range(1, c - 1):
            yield (0, y)
        # "A >= x": exclude the full domain and the equality [C-1, C-1].
        for x in range(1, c - 1):
            yield (x, c - 1)
    elif query_class == "2RQ":
        for x in range(1, c - 1):
            for y in range(x + 1, c - 1):
                yield (x, y)
    elif query_class == "RQ":
        yield from query_class_queries(c, "1RQ")
        yield from query_class_queries(c, "2RQ")
    else:
        raise QueryError(
            f"unknown query class {query_class!r}; expected one of {QUERY_CLASSES}"
        )


def scan_cost(scheme: EncodingScheme, cardinality: int, low: int, high: int) -> int:
    """Distinct bitmaps the scheme's expression reads for ``[low, high]``."""
    expr = simplify(scheme.interval_expr(cardinality, low, high))
    return expression_scan_count(expr)


def expected_scans(
    scheme: EncodingScheme, cardinality: int, query_class: str
) -> float:
    """Expected bitmap scans for a uniform query in ``query_class``.

    This is the paper's ``Time(S, C, Q)``; it is computed by exact
    enumeration.  Returns 0.0 for classes that are empty at this
    cardinality (e.g. 2RQ for C < 4).
    """
    total = 0
    count = 0
    for low, high in query_class_queries(cardinality, query_class):
        total += scan_cost(scheme, cardinality, low, high)
        count += 1
    if count == 0:
        return 0.0
    return total / count


def worst_case_scans(
    scheme: EncodingScheme, cardinality: int, query_class: str
) -> int:
    """Maximum bitmap scans over the class (0 for empty classes)."""
    return max(
        (
            scan_cost(scheme, cardinality, low, high)
            for low, high in query_class_queries(cardinality, query_class)
        ),
        default=0,
    )


def space_cost(scheme: EncodingScheme, cardinality: int) -> int:
    """The paper's ``Space(S, C)``: number of stored bitmaps."""
    return scheme.num_bitmaps(cardinality)


@dataclass(frozen=True)
class UpdateCosts:
    """Bitmap updates required to insert one record (§4.2)."""

    best: int
    expected: float
    worst: int


def update_costs(scheme: EncodingScheme, cardinality: int) -> UpdateCosts:
    """Best/expected/worst bitmap updates over a uniform new value.

    Matches §4.2: equality encoding is (1, 1, 1); range encoding is
    (1, ~(C-1)/2, C-1); interval encoding is (1, ~C/4, floor(C/2)).
    """
    costs = [scheme.update_cost(cardinality, v) for v in range(cardinality)]
    return UpdateCosts(
        best=min(costs),
        expected=sum(costs) / len(costs),
        worst=max(costs),
    )
