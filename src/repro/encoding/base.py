"""Abstract interface shared by all encoding schemes.

A scheme is characterized by:

* its *catalog* — for attribute cardinality C, an ordered mapping from
  slot labels to the set of attribute values each stored bitmap
  represents (the paper's notational overload of a bitmap as a value
  set);
* its *evaluation equations* — expression builders for equality,
  one-sided and two-sided range queries, each returning an
  :class:`~repro.expr.Expr` whose leaves are slot labels.

Index construction and completeness checking are derived generically
from the catalog, so each concrete scheme only supplies its definition
and its (hand-derived, scan-minimal) evaluation equations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable

import numpy as np

from repro.bitmap import BitVector
from repro.errors import EncodingSchemeError, QueryError
from repro.expr import Expr, not_of, one, zero

SlotKey = Hashable


class EncodingScheme(ABC):
    """A bitmap encoding scheme for an attribute with cardinality C.

    Concrete schemes implement :meth:`catalog`, :meth:`eq_expr`,
    :meth:`le_expr` and (where they have a better plan than the default
    conjunction of one-sided queries) :meth:`two_sided_expr`.

    All expression builders assume the attribute domain is the integers
    ``[0, C)``, as in the paper.
    """

    #: Registry name, e.g. ``"E"``, ``"R"``, ``"I"``.
    name: str = ""
    #: Whether the per-digit predicate ``alpha_k`` in the multi-component
    #: rewrite (Eq. 8) should be an equality (True) or a ``<=`` predicate
    #: (False) — schemes that evaluate equalities in one scan prefer the
    #: equality form (Section 6.2).
    prefers_equality: bool = False

    def __init__(self) -> None:
        self._catalog_cache: dict[int, dict[SlotKey, frozenset[int]]] = {}

    # ------------------------------------------------------------------
    # Definition
    # ------------------------------------------------------------------

    def catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        """Ordered mapping of slot label -> represented value set.

        Memoized per cardinality; concrete schemes implement
        :meth:`_catalog`.
        """
        self._check_cardinality(cardinality)
        cached = self._catalog_cache.get(cardinality)
        if cached is None:
            cached = self._catalog(cardinality)
            self._catalog_cache[cardinality] = cached
        return cached

    @abstractmethod
    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        """Build the catalog for ``cardinality`` (uncached)."""

    def num_bitmaps(self, cardinality: int) -> int:
        """Number of stored bitmaps (the paper's space cost)."""
        return len(self.catalog(cardinality))

    def slots(self, cardinality: int) -> list[SlotKey]:
        """Slot labels in storage order."""
        return list(self.catalog(cardinality))

    def _check_cardinality(self, cardinality: int) -> None:
        if cardinality < 1:
            raise EncodingSchemeError(
                f"cardinality must be >= 1, got {cardinality}"
            )

    def _check_value(self, cardinality: int, value: int) -> None:
        self._check_cardinality(cardinality)
        if not 0 <= value < cardinality:
            raise QueryError(
                f"value {value} outside domain [0, {cardinality})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build(
        self, values: np.ndarray, cardinality: int
    ) -> dict[SlotKey, BitVector]:
        """Materialize the scheme's bitmaps for a value column.

        ``values`` holds one attribute value (in ``[0, cardinality)``)
        per record; the result maps each slot label to its bit vector of
        ``len(values)`` bits.
        """
        self._check_cardinality(cardinality)
        vals = np.asarray(values)
        if vals.size and (vals.min() < 0 or vals.max() >= cardinality):
            raise EncodingSchemeError(
                f"column values outside domain [0, {cardinality}): "
                f"[{vals.min()}, {vals.max()}]"
            )
        bitmaps: dict[SlotKey, BitVector] = {}
        for slot, value_set in self.catalog(cardinality).items():
            members = np.isin(vals, np.fromiter(value_set, dtype=vals.dtype if vals.size else np.int64))
            bitmaps[slot] = BitVector.from_bools(members)
        return bitmaps

    # ------------------------------------------------------------------
    # Evaluation equations
    # ------------------------------------------------------------------

    @abstractmethod
    def eq_expr(self, cardinality: int, value: int) -> Expr:
        """Expression for the equality query ``A = value``."""

    @abstractmethod
    def le_expr(self, cardinality: int, value: int) -> Expr:
        """Expression for the one-sided range query ``A <= value``.

        Must accept the full value range ``0 <= value <= C - 1``
        (``value == C - 1`` yields the all-ones constant).
        """

    def ge_expr(self, cardinality: int, value: int) -> Expr:
        """Expression for ``A >= value`` (via the complement of ``<=``)."""
        self._check_value(cardinality, value)
        if value == 0:
            return one()
        return not_of(self.le_expr(cardinality, value - 1))

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        """Expression for ``low <= A <= high`` with ``0 < low < high < C-1``.

        The default conjoins the two one-sided queries; schemes with a
        cheaper plan (range: XOR, interval: the Eq. 6 case analysis)
        override this.
        """
        return self.le_expr(cardinality, high) & self.ge_expr(cardinality, low)

    def interval_expr(self, cardinality: int, low: int, high: int) -> Expr:
        """Expression for the interval query ``low <= A <= high``.

        Dispatches to the equality / one-sided / two-sided equations
        exactly as the paper classifies interval queries (Section 1).
        """
        self._check_value(cardinality, low)
        self._check_value(cardinality, high)
        if low > high:
            raise QueryError(f"empty interval [{low}, {high}]")
        if low == 0 and high == cardinality - 1:
            return one()
        if low == high:
            return self.eq_expr(cardinality, low)
        if low == 0:
            return self.le_expr(cardinality, high)
        if high == cardinality - 1:
            return self.ge_expr(cardinality, low)
        return self.two_sided_expr(cardinality, low, high)

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    def is_complete(self, cardinality: int) -> bool:
        """True iff every equality query is answerable from the catalog.

        A scheme is complete iff the membership-signature map
        ``v -> (v in B for each bitmap B)`` is injective (Section 3).
        """
        self._check_cardinality(cardinality)
        if cardinality == 1:
            return True
        catalog = self.catalog(cardinality)
        signatures = {
            tuple(v in s for s in catalog.values())
            for v in range(cardinality)
        }
        return len(signatures) == cardinality

    def update_cost(self, cardinality: int, value: int) -> int:
        """Bitmaps whose bit must be set when a record with ``value`` arrives.

        This is the §4.2 update-cost measure; the best/expected/worst
        figures quoted there are aggregations of this over the domain.
        """
        self._check_value(cardinality, value)
        return sum(
            1 for value_set in self.catalog(cardinality).values() if value in value_set
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def trivial_domain_expr(cardinality: int) -> Expr | None:
    """The universal answer for degenerate domains, or None.

    With ``cardinality == 1`` the only value is 0 and every non-empty
    query answer is the full relation; schemes share this guard.
    """
    if cardinality == 1:
        return one()
    return None


__all__ = ["EncodingScheme", "SlotKey", "trivial_domain_expr", "zero"]
