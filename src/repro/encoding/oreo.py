"""OREO encoding (Oscillating Range and Equality Organization, §5.2).

OREO interleaves range- and equality-flavoured bitmaps within the same
C - 1 bitmap budget as range encoding:

* ``O^i = R^i = [0, i]``        for odd i, ``1 <= i < C-1``;
* ``O^i = E^{i-1} OR E^i = {i-1, i}`` for even i, ``1 <= i < C-1``;
* ``O^{C-1} =`` the set of all even values (the *parity* bitmap).

The paper defers OREO's evaluation expressions to the tech report; the
derivation used here (verified against the brute-force planner) is:

one-sided ``A <= v`` (v < C-1):
    * v odd:  ``R^v``                                   (1 scan)
    * v = 0:  ``parity AND R^1`` (or ``parity`` when C = 2) (2 scans)
    * v even, v >= 2: ``R^{v-1} OR O^v``                 (2 scans;
      ``[0,v-1] ∪ {v-1,v} = [0,v]``)

equality ``A = v``:
    * v = 0:              ``parity AND R^1``  (``parity`` when C = 2)
    * v even, 0 < v < C-1: ``O^v AND parity``            (2 scans)
    * v odd, v+1 < C-1:    ``O^{v+1} AND NOT parity``    (2 scans)
    * v = 1 = C-2:         ``R^1 AND NOT parity``        (2 scans)
    * v odd, v = C-2 >= 3: ``(R^{C-2} XOR R^{C-4}) AND NOT parity``
      (3 scans; the even neighbour's pair bitmap does not exist because
      ``C-1`` is the parity slot)
    * v = C-1 odd (C even): ``NOT (R^{C-3} OR O^{C-2})``  (2 scans)
    * v = C-1 even (C odd): ``NOT R^{C-2}``               (1 scan)

two-sided ranges:
    * ``{v, v+1}`` with odd v is exactly the stored pair ``O^{v+1}``
      (1 scan);
    * both-prefixes-stored cases XOR two range bitmaps (2 scans);
    * otherwise the one-sided forms are conjoined (2-4 scans).
"""

from __future__ import annotations

from repro.encoding.base import EncodingScheme, SlotKey
from repro.errors import QueryError
from repro.expr import Expr, leaf, not_of, one

_PARITY = "parity"


def _parity_key(cardinality: int) -> SlotKey:
    """Slot label of the parity bitmap O^{C-1}."""
    return cardinality - 1


class OreoEncoding(EncodingScheme):
    """The OREO hybrid scheme O."""

    name = "O"
    prefers_equality = False

    def _catalog(self, cardinality: int) -> dict[SlotKey, frozenset[int]]:
        catalog: dict[SlotKey, frozenset[int]] = {}
        for i in range(1, cardinality - 1):
            if i % 2:
                catalog[i] = frozenset(range(i + 1))
            else:
                catalog[i] = frozenset({i - 1, i})
        if cardinality >= 2:
            catalog[cardinality - 1] = frozenset(
                v for v in range(cardinality) if v % 2 == 0
            )
        return catalog

    # ------------------------------------------------------------------

    def eq_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        c = cardinality
        if c == 1:
            return one()
        parity = leaf(_parity_key(c))
        if value == 0:
            if c == 2:
                return parity
            return parity & leaf(1)
        if value == c - 1:
            if value % 2 == 0:
                # C odd: R^{C-2} exists (C-2 is odd).
                return not_of(leaf(c - 2))
            if c == 2:
                return not_of(parity)
            # C even: complement of A <= C-2 (C-2 even, >= 2).
            return not_of(leaf(c - 3) | leaf(c - 2))
        if value % 2 == 0:
            # Interior even value: pair bitmap restricted to evens.
            return leaf(value) & parity
        # Interior odd value.
        if value + 1 < c - 1:
            return leaf(value + 1) & not_of(parity)
        # value == C-2 (odd, so C is odd) and the pair O^{C-1} is the
        # parity slot instead.
        if value == 1:
            return leaf(1) & not_of(parity)
        return (leaf(value) ^ leaf(value - 2)) & not_of(parity)

    # ------------------------------------------------------------------

    def le_expr(self, cardinality: int, value: int) -> Expr:
        self._check_value(cardinality, value)
        c = cardinality
        if value == c - 1:
            return one()
        if value == 0:
            return self.eq_expr(c, 0)
        if value % 2:
            return leaf(value)
        return leaf(value - 1) | leaf(value)

    def two_sided_expr(self, cardinality: int, low: int, high: int) -> Expr:
        if not 0 < low < high < cardinality - 1:
            raise QueryError(
                f"not a two-sided range for C={cardinality}: [{low}, {high}]"
            )
        if high == low + 1 and low % 2 and high < cardinality - 1:
            # {low, low+1} with odd low is exactly the stored pair
            # bitmap O^{low+1}.
            return leaf(high)
        if low % 2 == 0 and high % 2:
            # Both prefixes are stored range bitmaps: XOR them.
            return leaf(high) ^ leaf(low - 1)
        return self.le_expr(cardinality, high) & self.ge_expr(cardinality, low)


__all__ = ["OreoEncoding"]
