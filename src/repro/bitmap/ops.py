"""Bulk operations and iteration helpers over bit vectors."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.errors import BitmapError


def _reduce(vectors: Iterable[BitVector], op: str) -> BitVector:
    vecs = list(vectors)
    if not vecs:
        raise BitmapError(f"{op} of zero bit vectors is undefined without a length")
    result = vecs[0].copy()
    for vec in vecs[1:]:
        if op == "and":
            result &= vec
        elif op == "or":
            result |= vec
        else:
            result ^= vec
    return result


def and_all(vectors: Iterable[BitVector]) -> BitVector:
    """AND of one or more vectors; raises :class:`BitmapError` on zero."""
    return _reduce(vectors, "and")


def or_all(vectors: Iterable[BitVector]) -> BitVector:
    """OR of one or more vectors; raises :class:`BitmapError` on zero."""
    return _reduce(vectors, "or")


def xor_all(vectors: Iterable[BitVector]) -> BitVector:
    """XOR of one or more vectors; raises :class:`BitmapError` on zero."""
    return _reduce(vectors, "xor")


def concatenate(vectors: Iterable[BitVector]) -> BitVector:
    """Concatenate vectors end to end (batch-append building block).

    Word-aligned joins (every vector but the last a multiple of 64 bits)
    are a direct word-array copy; unaligned joins shift word arrays
    rather than expanding to booleans, so appending a small batch to a
    large bitmap costs O(words), not O(bits).
    """
    vecs = list(vectors)
    if not vecs:
        return BitVector(0)
    if len(vecs) == 1:
        return vecs[0].copy()

    total_bits = sum(len(v) for v in vecs)
    out = np.zeros((total_bits + 63) // 64, dtype=np.uint64)
    offset = 0
    for vec in vecs:
        words = vec.words
        if not len(vec):
            continue
        word_index, bit_shift = divmod(offset, 64)
        if bit_shift == 0:
            out[word_index : word_index + words.shape[0]] |= words
        else:
            shift = np.uint64(bit_shift)
            inv_shift = np.uint64(64 - bit_shift)
            out[word_index : word_index + words.shape[0]] |= words << shift
            spill = words >> inv_shift
            end = word_index + 1 + words.shape[0]
            out[word_index + 1 : end] |= spill[: out.shape[0] - word_index - 1]
        offset += len(vec)
    result = BitVector(total_bits, out)
    result._mask_padding()
    return result


def iter_set_bits(vector: BitVector) -> Iterator[int]:
    """Positions of set bits in increasing order."""
    yield from vector.iter_set_bits()


def iter_runs(vector: BitVector) -> Iterator[tuple[bool, int]]:
    """Maximal runs of equal bits as ``(bit_value, run_length)`` pairs.

    The run decomposition is what run-length codecs compress; exposing it
    here keeps the codecs independent of the word representation.
    """
    n = len(vector)
    if n == 0:
        return
    bits = vector.to_bools()
    # Boundaries where the bit value changes.
    change = np.flatnonzero(bits[1:] != bits[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    for start, end in zip(starts.tolist(), ends.tolist()):
        yield bool(bits[start]), end - start
