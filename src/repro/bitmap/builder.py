"""Incremental construction of bit vectors.

Index construction appends one bit per record per bitmap; doing that via
``BitVector.__setitem__`` would be needlessly slow for large relations.
:class:`BitVectorBuilder` buffers appended bits and run lengths and packs
them into words in bulk.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.errors import BitmapError


class BitVectorBuilder:
    """Builds a :class:`BitVector` by appending bits and runs.

    The builder is append-only; call :meth:`finish` once to obtain the
    vector.  Appending after :meth:`finish` raises :class:`BitmapError`.
    """

    def __init__(self) -> None:
        self._chunks: list[np.ndarray] = []
        self._finished = False

    def _check_open(self) -> None:
        if self._finished:
            raise BitmapError("builder already finished")

    def append(self, bit: bool) -> None:
        """Append a single bit."""
        self._check_open()
        self._chunks.append(np.array([bool(bit)]))

    def append_run(self, bit: bool, length: int) -> None:
        """Append ``length`` copies of ``bit``."""
        self._check_open()
        if length < 0:
            raise BitmapError(f"run length must be >= 0, got {length}")
        if length:
            self._chunks.append(np.full(length, bool(bit)))

    def append_bools(self, bits: np.ndarray) -> None:
        """Append a boolean array of bits."""
        self._check_open()
        arr = np.asarray(bits, dtype=bool)
        if arr.ndim != 1:
            raise BitmapError(f"expected 1-d boolean array, got ndim={arr.ndim}")
        if arr.size:
            self._chunks.append(arr)

    def __len__(self) -> int:
        return sum(chunk.shape[0] for chunk in self._chunks)

    def finish(self) -> BitVector:
        """Pack all appended bits into a :class:`BitVector`."""
        self._check_open()
        self._finished = True
        if not self._chunks:
            return BitVector(0)
        all_bits = np.concatenate(self._chunks)
        return BitVector.from_bools(all_bits)


def column_bitmaps(values: np.ndarray, cardinality: int) -> list[BitVector]:
    """Equality bitmaps for a value column: one vector per attribute value.

    ``values`` is the projection of the indexed attribute (integers in
    ``[0, cardinality)``); the result is the list ``[E^0, ..., E^{C-1}]``
    where bit ``i`` of ``E^v`` is set iff ``values[i] == v``.  This is the
    building block from which every encoding scheme materializes its
    bitmaps.
    """
    vals = np.asarray(values)
    if vals.size and (vals.min() < 0 or vals.max() >= cardinality):
        raise BitmapError(
            f"values out of domain [0, {cardinality}): "
            f"[{vals.min()}, {vals.max()}]"
        )
    return [BitVector.from_bools(vals == v) for v in range(cardinality)]
