"""Bit-vector substrate.

A bitmap index is a collection of bit vectors, one bit per record.  This
subpackage provides :class:`~repro.bitmap.bitvector.BitVector`, a fixed
length vector of bits backed by a numpy ``uint64`` word array, with the
hardware-friendly bulk operations the paper relies on (AND, OR, XOR, NOT,
popcount), plus builders and iteration helpers.
"""

from repro.bitmap.bitvector import BitVector
from repro.bitmap.builder import BitVectorBuilder
from repro.bitmap.ops import (
    and_all,
    concatenate,
    iter_runs,
    iter_set_bits,
    or_all,
    xor_all,
)

__all__ = [
    "BitVector",
    "BitVectorBuilder",
    "and_all",
    "or_all",
    "xor_all",
    "concatenate",
    "iter_set_bits",
    "iter_runs",
]
