"""Fixed-length bit vectors backed by numpy ``uint64`` words.

The paper's whole premise is that bitmap manipulation maps onto bulk
bit-wise instructions.  :class:`BitVector` mirrors that: every logical
operation is a single vectorized numpy expression over 64-bit words, and
bits past the logical length are kept zero at all times (the *padding
invariant*) so that popcounts and comparisons never need masking.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import BitmapError

_WORD_BITS = 64
_FULL_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def _num_words(num_bits: int) -> int:
    """Number of 64-bit words needed to hold ``num_bits`` bits."""
    return (num_bits + _WORD_BITS - 1) // _WORD_BITS


class BitVector:
    """A fixed-length sequence of bits supporting bulk logical operations.

    Instances are mutable (bits can be set and cleared in place) but all
    logical operators (``&``, ``|``, ``^``, ``~``) return new vectors, which
    matches how query evaluation treats stored bitmaps as read-only inputs.

    Parameters
    ----------
    length:
        The number of bits (the cardinality of the indexed relation).
    words:
        Optional backing array.  When given it is used directly (not
        copied); it must be a ``uint64`` array of exactly the right size
        with zero padding bits.  This is an internal fast path used by the
        builders and codecs.
    """

    __slots__ = ("_length", "_words")

    def __init__(self, length: int, words: np.ndarray | None = None):
        if length < 0:
            raise BitmapError(f"bit vector length must be >= 0, got {length}")
        self._length = length
        if words is None:
            self._words = np.zeros(_num_words(length), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (_num_words(length),):
                raise BitmapError(
                    "backing words must be a uint64 array of "
                    f"{_num_words(length)} words, got {words.dtype} array "
                    f"of shape {words.shape}"
                )
            self._words = words

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        """An all-zero vector of ``length`` bits."""
        return cls(length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        """An all-one vector of ``length`` bits."""
        vec = cls(length)
        vec._words[:] = _FULL_WORD
        vec._mask_padding()
        return vec

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "BitVector":
        """A vector with exactly the bits at ``indices`` set.

        Raises :class:`BitmapError` if any index is out of range.
        """
        vec = cls(length)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return vec
        if idx.min() < 0 or idx.max() >= length:
            raise BitmapError(
                f"bit index out of range for length {length}: "
                f"[{idx.min()}, {idx.max()}]"
            )
        words, offsets = np.divmod(idx, _WORD_BITS)
        np.bitwise_or.at(vec._words, words, np.uint64(1) << offsets.astype(np.uint64))
        return vec

    @classmethod
    def from_bools(cls, bits: Sequence[bool] | np.ndarray) -> "BitVector":
        """A vector whose i-th bit equals ``bool(bits[i])``."""
        arr = np.asarray(bits, dtype=bool)
        if arr.ndim != 1:
            raise BitmapError(f"expected a 1-d boolean sequence, got ndim={arr.ndim}")
        length = arr.shape[0]
        vec = cls(length)
        if length == 0:
            return vec
        packed = np.packbits(arr, bitorder="little")
        padded = np.zeros(_num_words(length) * 8, dtype=np.uint8)
        padded[: packed.shape[0]] = packed
        vec._words = padded.view(np.uint64)
        return vec

    @classmethod
    def from_bytes(cls, length: int, payload: bytes) -> "BitVector":
        """Inverse of :meth:`to_bytes`."""
        expected = _num_words(length) * 8
        if len(payload) != expected:
            raise BitmapError(
                f"payload has {len(payload)} bytes; length {length} needs {expected}"
            )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        vec = cls(length, words)
        vec._mask_padding()
        return vec

    def copy(self) -> "BitVector":
        """An independent copy of this vector."""
        return BitVector(self._length, self._words.copy())

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def words(self) -> np.ndarray:
        """The backing ``uint64`` word array (read-mostly; padding is zero)."""
        return self._words

    @property
    def num_words(self) -> int:
        """Number of backing 64-bit words."""
        return self._words.shape[0]

    def __getitem__(self, index: int) -> bool:
        index = self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        return bool((self._words[word] >> np.uint64(offset)) & np.uint64(1))

    def __setitem__(self, index: int, value: bool) -> None:
        index = self._check_index(index)
        word, offset = divmod(index, _WORD_BITS)
        mask = np.uint64(1) << np.uint64(offset)
        if value:
            self._words[word] |= mask
        else:
            self._words[word] &= ~mask

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise BitmapError(f"bit index {index} out of range for length {self._length}")
        return index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self._length, self._words.tobytes()))

    def __repr__(self) -> str:
        if self._length <= 80:
            bits = "".join("1" if b else "0" for b in self.to_bools())
            return f"BitVector({self._length}, '{bits}')"
        return f"BitVector({self._length}, popcount={self.count()})"

    # ------------------------------------------------------------------
    # Logical operations (the hardware-friendly core)
    # ------------------------------------------------------------------

    def _check_same_length(self, other: "BitVector") -> None:
        if self._length != other._length:
            raise BitmapError(
                f"length mismatch: {self._length} vs {other._length}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words | other._words)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        return BitVector(self._length, self._words ^ other._words)

    def __invert__(self) -> "BitVector":
        result = BitVector(self._length, ~self._words)
        result._mask_padding()
        return result

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        self._words &= other._words
        return self

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        self._words |= other._words
        return self

    def __ixor__(self, other: "BitVector") -> "BitVector":
        self._check_same_length(other)
        self._words ^= other._words
        return self

    def invert_inplace(self) -> "BitVector":
        """Complement every bit in place and return ``self``."""
        np.invert(self._words, out=self._words)
        self._mask_padding()
        return self

    def _mask_padding(self) -> None:
        """Clear the padding bits in the last word (the padding invariant)."""
        tail = self._length % _WORD_BITS
        if tail and self._words.shape[0]:
            self._words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        return int(np.bitwise_count(self._words).sum())

    def any(self) -> bool:
        """True iff at least one bit is set."""
        return bool(self._words.any())

    def all(self) -> bool:
        """True iff every bit (within the logical length) is set."""
        return self.count() == self._length

    def to_bools(self) -> np.ndarray:
        """The bits as a boolean numpy array of the logical length."""
        as_bytes = self._words.view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="little")
        return bits[: self._length].astype(bool)

    def to_indices(self) -> np.ndarray:
        """Sorted array of the positions of set bits."""
        return np.flatnonzero(self.to_bools())

    def to_bytes(self) -> bytes:
        """The raw little-endian word payload (inverse of :meth:`from_bytes`)."""
        return self._words.tobytes()

    def density(self) -> float:
        """Fraction of set bits, 0.0 for the empty vector."""
        if self._length == 0:
            return 0.0
        return self.count() / self._length

    def iter_set_bits(self) -> Iterator[int]:
        """Iterate over positions of set bits in increasing order."""
        yield from self.to_indices().tolist()
