"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that the
package can be installed in editable mode on machines without the
``wheel`` package (offline environments cannot perform PEP 660 editable
installs, which require building a wheel):

    python setup.py develop
"""

from setuptools import setup

setup()
